// Modularity measures: Newman's Q for partitions and the overlapping
// extension EQ (Shen et al. 2009), which divides each node's
// contribution by its membership count. These score a cover against the
// graph itself — no ground truth needed — complementing the supervised
// metrics (Theta, F1, omega, ONMI).

#ifndef OCA_METRICS_MODULARITY_H_
#define OCA_METRICS_MODULARITY_H_

#include "core/cover.h"
#include "graph/graph.h"
#include "util/result.h"

namespace oca {

/// Newman modularity Q of a PARTITION cover:
///   Q = sum_c [ ein_c/m - (vol_c / 2m)^2 ].
/// Errors when the cover overlaps, misses nodes of positive degree, or
/// the graph has no edges. Q in [-1/2, 1).
Result<double> Modularity(const Graph& graph, const Cover& partition);

/// Overlapping modularity EQ (Shen et al.):
///   EQ = (1/2m) sum_c sum_{u,v in c} [A_uv - k_u k_v / 2m] / (O_u O_v)
/// where O_v = number of communities containing v. Uncovered nodes are
/// skipped (they contribute nothing). Reduces to Q on partitions.
/// Errors on an edgeless graph or empty cover.
Result<double> OverlappingModularity(const Graph& graph, const Cover& cover);

}  // namespace oca

#endif  // OCA_METRICS_MODULARITY_H_
