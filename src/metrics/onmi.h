// Overlapping Normalized Mutual Information (Lancichinetti, Fortunato &
// Kertész 2009, appendix) — the de-facto standard quality metric for
// overlapping covers, introduced by the authors of the paper's LFK
// baseline. Provided as an extension beyond the paper's Theta.
//
// Each community is treated as a binary random variable over nodes
// (member / non-member). For covers X = {X_i} and Y = {Y_j}:
//
//   H(X_i | Y)      = min over j of h(X_i | Y_j), but only over j where
//                     the joint entropy split passes the LFK validity
//                     test (otherwise H(X_i)),
//   H(X | Y)_norm   = mean_i H(X_i | Y) / H(X_i),
//   ONMI(X, Y)      = 1 - [H(X|Y)_norm + H(Y|X)_norm] / 2.
//
// 1 = identical covers, 0 = independent.

#ifndef OCA_METRICS_ONMI_H_
#define OCA_METRICS_ONMI_H_

#include <cstddef>

#include "core/cover.h"
#include "util/result.h"

namespace oca {

/// Computes ONMI over the node universe [0, num_nodes). Errors when a
/// cover is empty or num_nodes == 0.
Result<double> Onmi(const Cover& a, const Cover& b, size_t num_nodes);

}  // namespace oca

#endif  // OCA_METRICS_ONMI_H_
