// Average best-match F1 between two covers (Yang & Leskovec 2013 style):
// symmetric mean of, for each community on one side, the best F1 against
// any community on the other side. Extension metric beyond the paper's
// Theta; widely used for overlapping community evaluation.

#ifndef OCA_METRICS_F1_OVERLAP_H_
#define OCA_METRICS_F1_OVERLAP_H_

#include "core/cover.h"
#include "util/result.h"

namespace oca {

/// F1 of two sorted communities (harmonic mean of precision and recall of
/// `found` against `truth`). F1 of two empty sets is 1.
double CommunityF1(const Community& truth, const Community& found);

/// Symmetric average best-match F1. Errors when either cover is empty.
Result<double> AverageF1(const Cover& truth, const Cover& found);

}  // namespace oca

#endif  // OCA_METRICS_F1_OVERLAP_H_
