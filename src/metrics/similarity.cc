#include "metrics/similarity.h"

namespace oca {

size_t IntersectionSize(const Community& a, const Community& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double RhoSimilarity(const Community& a, const Community& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace oca
