// The paper's community similarity rho (equation V.1):
//
//   rho(C, D) = 1 - (|C \ D| + |D \ C|) / |C u D|
//
// Since |C\D| + |D\C| = |C u D| - |C n D|, rho equals the Jaccard index
// |C n D| / |C u D|; we compute it with a linear merge over sorted sets.

#ifndef OCA_METRICS_SIMILARITY_H_
#define OCA_METRICS_SIMILARITY_H_

#include <cstddef>

#include "core/cover.h"

namespace oca {

/// Intersection size of two sorted, duplicate-free communities. O(|a|+|b|).
size_t IntersectionSize(const Community& a, const Community& b);

/// rho(a, b) in [0, 1]; both inputs must be sorted and duplicate-free.
/// rho of two empty sets is defined as 1 (identical).
double RhoSimilarity(const Community& a, const Community& b);

}  // namespace oca

#endif  // OCA_METRICS_SIMILARITY_H_
