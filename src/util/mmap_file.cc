#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oca {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void MmapFile::AdviseSequential() const {
  if (base_ != nullptr) (void)::madvise(base_, size_, MADV_SEQUENTIAL);
}

Result<std::shared_ptr<const MmapFile>> OpenMmapFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open", path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = ErrnoError("cannot stat", path);
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);

  // mmap rejects zero-length mappings; an empty file is still a valid
  // (empty) view so format readers can produce their own "truncated"
  // diagnostics from section arithmetic.
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      Status s = ErrnoError("cannot mmap", path);
      ::close(fd);
      return s;
    }
  }
  return std::shared_ptr<const MmapFile>(new MmapFile(base, size, fd));
}

}  // namespace oca
