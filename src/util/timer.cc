#include "util/timer.h"

#include <cstdio>

namespace oca {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    int mins = static_cast<int>(seconds / 60.0);
    int secs = static_cast<int>(seconds - mins * 60.0);
    std::snprintf(buf, sizeof(buf), "%dm%02ds", mins, secs);
  }
  return buf;
}

}  // namespace oca
