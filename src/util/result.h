// Result<T>: a value or a Status, for fallible factory-style functions.

#ifndef OCA_UTIL_RESULT_H_
#define OCA_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace oca {

/// Holds either a T (status is OK) or an error Status. Accessing the value
/// of an errored Result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from status: must be an error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace oca

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// move-assigns the value into `lhs`. Usable in functions returning Status
/// or Result<U>.
#define OCA_ASSIGN_OR_RETURN(lhs, rexpr)     \
  OCA_ASSIGN_OR_RETURN_IMPL_(                \
      OCA_RESULT_CONCAT_(_oca_result, __LINE__), lhs, rexpr)

#define OCA_RESULT_CONCAT_INNER_(a, b) a##b
#define OCA_RESULT_CONCAT_(a, b) OCA_RESULT_CONCAT_INNER_(a, b)
#define OCA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#endif  // OCA_UTIL_RESULT_H_
