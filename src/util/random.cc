#include "util/random.h"

#include <cmath>

namespace oca {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
  // The all-zero state is invalid for xoshiro; SplitMix64 cannot emit four
  // zeros in a row, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ull;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::NextGeometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::NextPowerLaw(uint64_t min, uint64_t max, double gamma) {
  assert(min >= 1 && min <= max);
  if (min == max) return min;
  double u = NextDouble();
  double a = static_cast<double>(min);
  double b = static_cast<double>(max) + 1.0;
  double x;
  if (std::fabs(gamma - 1.0) < 1e-12) {
    // P(x) ~ 1/x: inverse CDF is exponential interpolation.
    x = a * std::pow(b / a, u);
  } else {
    double e = 1.0 - gamma;
    double lo = std::pow(a, e);
    double hi = std::pow(b, e);
    x = std::pow(lo + u * (hi - lo), 1.0 / e);
  }
  uint64_t k = static_cast<uint64_t>(x);
  if (k < min) k = min;
  if (k > max) k = max;
  return k;
}

Rng Rng::Fork(uint64_t stream_index) {
  // Mix the parent's next output with the stream index through SplitMix64
  // so sibling streams differ even for adjacent indices.
  uint64_t mix = Next() ^ (0xA0761D6478BD642Full * (stream_index + 1));
  return Rng(SplitMix64(&mix));
}

}  // namespace oca
