#include "util/union_find.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace oca {

UnionFind::UnionFind(size_t size)
    : parent_(size), rank_(size, 0), size_(size, 1), num_sets_(size) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t UnionFind::Find(uint32_t x) {
  assert(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<std::vector<uint32_t>> UnionFind::Groups() {
  // First pass: map representatives to dense group ids in order of first
  // appearance (which, scanning ascending, is order of smallest member).
  std::vector<int32_t> group_of(parent_.size(), -1);
  std::vector<std::vector<uint32_t>> groups;
  for (uint32_t x = 0; x < parent_.size(); ++x) {
    uint32_t r = Find(x);
    if (group_of[r] < 0) {
      group_of[r] = static_cast<int32_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<size_t>(group_of[r])].push_back(x);
  }
  return groups;
}

}  // namespace oca
