// Streaming summary statistics (Welford) for timing and metric samples.

#ifndef OCA_UTIL_STOPWATCH_STATS_H_
#define OCA_UTIL_STOPWATCH_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace oca {

/// Accumulates count/mean/variance/min/max of a stream of doubles without
/// storing samples. Numerically stable (Welford's online algorithm).
class StreamingStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void Merge(const StreamingStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace oca

#endif  // OCA_UTIL_STOPWATCH_STATS_H_
