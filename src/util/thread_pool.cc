#include "util/thread_pool.h"

#include <algorithm>

namespace oca {

size_t DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  size_t chunks = std::min(count, num_threads() * 4);
  size_t base = count / chunks;
  size_t rem = count % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < rem ? 1 : 0);
    size_t end = begin + len;
    Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  Wait();
}

}  // namespace oca
