#include "util/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace oca {

namespace {

/// Worker index of the calling thread within the pool that owns it.
/// Threads belong to at most one pool for their whole lifetime, so a
/// plain thread_local (no pool identity) is unambiguous.
thread_local int tls_worker_index = -1;

}  // namespace

size_t DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

size_t ThreadCountFromEnv(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  // Malformed means malformed: overflow, trailing junk ("4abc"), or a
  // non-positive value all take the fallback rather than a wild count.
  if (errno != 0 || end == env || *end != '\0' || v <= 0) return fallback;
  return static_cast<size_t>(v);
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(0, std::move(task));
}

void ThreadPool::Submit(int priority, std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_[priority].push_back(std::move(task));
    ++num_queued_;
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = static_cast<int>(worker_index);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || num_queued_ > 0; });
      if (num_queued_ == 0) {
        if (shutdown_) return;
        continue;
      }
      // Highest priority bucket first (map is ordered by std::greater),
      // FIFO within the bucket.
      auto bucket = queue_.begin();
      task = std::move(bucket->second.front());
      bucket->second.pop_front();
      if (bucket->second.empty()) queue_.erase(bucket);
      --num_queued_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  size_t chunks = std::min(count, num_threads() * 4);
  size_t base = count / chunks;
  size_t rem = count % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < rem ? 1 : 0);
    size_t end = begin + len;
    Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  Wait();
}

}  // namespace oca
