// Read-only memory-mapped file, shared by every mmap-backed snapshot
// reader (the .ocag graph backend, the .ocac community store). One RAII
// owner per mapping; consumers hold it through a shared_ptr so views
// into the mapping stay valid for as long as any reader is alive — the
// same keep-alive discipline Graph::FromExternal uses.
//
// Error contract: every failure is a typed Status through Result<T>
// (kIOError — the file could not be opened, stat'ed, or mapped). Size
// checks against a format's header are the CALLER's job: a zero-byte
// file maps successfully to an empty view so format readers can report
// "truncated" with their own section arithmetic.

#ifndef OCA_UTIL_MMAP_FILE_H_
#define OCA_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/result.h"

namespace oca {

/// One read-only private mapping of a whole file. Not copyable or
/// movable — share it through the shared_ptr OpenMmapFile returns.
class MmapFile {
 public:
  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Base of the mapping (nullptr for an empty file).
  const char* data() const { return static_cast<const char*>(base_); }

  /// Exact file size in bytes at open time.
  size_t size() const { return size_; }

  /// madvise(MADV_SEQUENTIAL) over the whole mapping; advisory only.
  void AdviseSequential() const;

 private:
  friend Result<std::shared_ptr<const MmapFile>> OpenMmapFile(
      const std::string& path);
  MmapFile(void* base, size_t size, int fd)
      : base_(base), size_(size), fd_(fd) {}

  void* base_;
  size_t size_;
  int fd_;
};

/// Opens `path` read-only and maps it privately. The mapping and file
/// descriptor are released when the last shared_ptr copy is gone.
Result<std::shared_ptr<const MmapFile>> OpenMmapFile(const std::string& path);

}  // namespace oca

#endif  // OCA_UTIL_MMAP_FILE_H_
