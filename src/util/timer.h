// Wall-clock timing utilities used by benchmarks and the OCA driver.

#ifndef OCA_UTIL_TIMER_H_
#define OCA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace oca {

/// Monotonic stopwatch. Started on construction; `ElapsedSeconds` may be
/// called repeatedly; `Restart` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as a short human-readable string
/// ("843us", "12.4ms", "3.21s", "2m05s").
std::string FormatDuration(double seconds);

}  // namespace oca

#endif  // OCA_UTIL_TIMER_H_
