// Compact dynamic bitset with popcount and fast iteration over set bits.
//
// Used for node-membership tests in local search and clique enumeration,
// where std::vector<bool> is too slow and std::unordered_set too heavy.

#ifndef OCA_UTIL_DYNAMIC_BITSET_H_
#define OCA_UTIL_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oca {

/// Fixed-capacity-after-construction bitset over [0, size).
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size);

  size_t size() const { return size_; }

  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Sets all bits to zero.
  void Clear();

  /// Number of set bits.
  size_t Count() const;

  /// True if no bit is set.
  bool None() const { return Count() == 0; }

  /// Calls fn(i) for each set bit i in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Returns indices of set bits in ascending order.
  std::vector<uint32_t> ToVector() const;

  /// In-place intersection / union / difference; sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace oca

#endif  // OCA_UTIL_DYNAMIC_BITSET_H_
