// Status: lightweight error propagation without exceptions (RocksDB idiom).
//
// Functions that can fail return `Status` (or `Result<T>`, see result.h).
// A default-constructed Status is OK. Statuses carry a code plus a
// human-readable message and are cheap to move.

#ifndef OCA_UTIL_STATUS_H_
#define OCA_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace oca {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIOError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
};

/// Returns a stable lowercase name for a status code ("ok",
/// "invalid_argument", ...). Useful for logs and test assertions.
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error object. OK statuses carry no message and no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  // Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace oca

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define OCA_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::oca::Status _oca_status__ = (expr);    \
    if (!_oca_status__.ok()) {               \
      return _oca_status__;                  \
    }                                        \
  } while (false)

#endif  // OCA_UTIL_STATUS_H_
