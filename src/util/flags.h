// Tiny command-line flag parser for examples and benchmark drivers.
//
// Supports --name=value and --name value forms plus boolean --name.
// Not a general-purpose flags library; just enough for our binaries.

#ifndef OCA_UTIL_FLAGS_H_
#define OCA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace oca {

/// Parses argv into name->value pairs; positional arguments are kept in
/// order. Values are accessed with typed getters that fall back to a
/// default when absent and error on malformed input.
class FlagParser {
 public:
  /// Parses the command line. Unrecognized syntax (a lone "--") errors.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& name, int64_t default_value) const;
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace oca

#endif  // OCA_UTIL_FLAGS_H_
