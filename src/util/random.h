// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed
// and derives its randomness from an Rng instance, so all experiments are
// reproducible bit-for-bit across runs (given the same thread layout).
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. It is much faster than
// std::mt19937_64 and has no measurable bias for our use cases.

#ifndef OCA_UTIL_RANDOM_H_
#define OCA_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace oca {

/// SplitMix64 step; used to bootstrap xoshiro state and to derive
/// independent child seeds from a master seed.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian();

  /// Geometric-style skip sampling helper: returns the number of failures
  /// before the first success of a Bernoulli(p) sequence; used by the
  /// O(n + m) G(n,p) generator. Requires 0 < p <= 1.
  uint64_t NextGeometric(double p);

  /// Samples from a discrete power law on {min, ..., max} with exponent
  /// `gamma` > 0: P(k) proportional to k^(-gamma). Inverse-CDF over the
  /// continuous approximation, rounded and clamped; adequate for LFR-style
  /// degree/community-size sequences.
  uint64_t NextPowerLaw(uint64_t min, uint64_t max, double gamma);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Uniformly samples `k` distinct elements (indices preserved order not
  /// guaranteed) from `v` via partial Fisher-Yates. Requires k <= v.size().
  template <typename T>
  std::vector<T> SampleWithoutReplacement(const std::vector<T>& v, size_t k) {
    assert(k <= v.size());
    std::vector<T> pool = v;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Derives an independent child generator; child streams are decorrelated
  /// from the parent and from each other (indexed derivation).
  Rng Fork(uint64_t stream_index);

 private:
  uint64_t s_[4];
};

}  // namespace oca

#endif  // OCA_UTIL_RANDOM_H_
