// Minimal leveled logging to stderr. Intended for examples, benches and
// long-running drivers; the library core stays silent unless asked.

#ifndef OCA_UTIL_LOGGING_H_
#define OCA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace oca {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line ("[LEVEL] message") to stderr, thread-safely.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace oca

#define OCA_LOG(level) ::oca::internal::LogLine(::oca::LogLevel::level)

#endif  // OCA_UTIL_LOGGING_H_
