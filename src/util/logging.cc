#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace oca {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace oca
