#include "util/dynamic_bitset.h"

#include <cassert>

namespace oca {

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

void DynamicBitset::Set(size_t i) {
  assert(i < size_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void DynamicBitset::Reset(size_t i) {
  assert(i < size_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool DynamicBitset::Test(size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void DynamicBitset::Clear() {
  for (auto& w : words_) w = 0;
}

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(__builtin_popcountll(w));
  }
  return total;
}

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSet([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

}  // namespace oca
