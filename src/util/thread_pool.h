// Fixed-size thread pool with a simple work queue plus a deterministic
// ParallelFor helper used by the multi-seed OCA driver.

#ifndef OCA_UTIL_THREAD_POOL_H_
#define OCA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oca {

/// Fixed-size pool. Tasks are void() closures; `Wait` blocks until the
/// queue drains and all workers are idle. Destruction waits for pending
/// tasks. Not copyable or movable.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Safe to call from inside a running
  /// task (nested submission): the child is counted as in-flight before
  /// the parent finishes, so `Wait` cannot return while transitively
  /// spawned work is still pending. Tasks must never call `Wait`
  /// themselves — only blocking from off-pool threads is supported.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Index in [0, num_threads()) of the pool worker executing the
  /// calling thread, or -1 off-pool (e.g. on the thread that owns the
  /// pool). Lets tasks address per-worker state — e.g. one stateful
  /// solver engine per worker — without any locking: two tasks observing
  /// the same index are by construction serialized on the same worker.
  /// The index is pool-relative; a thread only ever belongs to one pool.
  static int CurrentWorkerIndex();

  /// Runs fn(i) for i in [0, count) across the pool, blocking until done.
  /// Work is chunked statically so assignment is deterministic; fn must be
  /// safe to call concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Sensible default worker count: hardware concurrency, at least 1.
size_t DefaultThreadCount();

/// Worker count from an environment variable (e.g. OCA_THREADS, the CI
/// thread matrix's knob): the variable's value when it parses as a
/// positive integer, `fallback` when unset or malformed. One parser for
/// every OCA_THREADS consumer so the env contract cannot drift.
size_t ThreadCountFromEnv(const char* name, size_t fallback);

}  // namespace oca

#endif  // OCA_UTIL_THREAD_POOL_H_
