// Fixed-size thread pool with a simple work queue plus a deterministic
// ParallelFor helper used by the multi-seed OCA driver.

#ifndef OCA_UTIL_THREAD_POOL_H_
#define OCA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oca {

/// Fixed-size pool. Tasks are void() closures; `Wait` blocks until the
/// queue drains and all workers are idle. Destruction waits for pending
/// tasks. Not copyable or movable.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool, blocking until done.
  /// Work is chunked statically so assignment is deterministic; fn must be
  /// safe to call concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Sensible default worker count: hardware concurrency, at least 1.
size_t DefaultThreadCount();

}  // namespace oca

#endif  // OCA_UTIL_THREAD_POOL_H_
