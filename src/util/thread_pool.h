// Fixed-size thread pool with a simple work queue plus a deterministic
// ParallelFor helper used by the multi-seed OCA driver.

#ifndef OCA_UTIL_THREAD_POOL_H_
#define OCA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace oca {

/// Fixed-size pool. Tasks are void() closures; `Wait` blocks until the
/// queue drains and all workers are idle. Destruction waits for pending
/// tasks. Not copyable or movable.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Safe to call from inside a running
  /// task (nested submission): the child is counted as in-flight before
  /// the parent finishes, so `Wait` cannot return while transitively
  /// spawned work is still pending. Tasks must never call `Wait`
  /// themselves — only blocking from off-pool threads is supported.
  void Submit(std::function<void()> task);

  /// Priority-aware Submit: among pending tasks, workers always pop the
  /// highest `priority` first; within one priority level order stays
  /// FIFO. The plain overload above enqueues at priority 0, so existing
  /// call sites are unaffected. Priorities only order the *pending*
  /// queue — they never preempt a running task. The recursive hierarchy
  /// submits with priority = node depth so workers drive one subtree to
  /// its leaves (releasing its interior eigenvectors) before fanning
  /// across siblings.
  void Submit(int priority, std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Index in [0, num_threads()) of the pool worker executing the
  /// calling thread, or -1 off-pool (e.g. on the thread that owns the
  /// pool). Lets tasks address per-worker state — e.g. one stateful
  /// solver engine per worker — without any locking: two tasks observing
  /// the same index are by construction serialized on the same worker.
  /// The index is pool-relative; a thread only ever belongs to one pool.
  static int CurrentWorkerIndex();

  /// Runs fn(i) for i in [0, count) across the pool, blocking until done.
  /// Work is chunked statically so assignment is deterministic; fn must be
  /// safe to call concurrently for distinct i.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  /// Pending tasks bucketed by priority, highest first (std::greater);
  /// each bucket is FIFO. `num_queued_` mirrors the total size so the
  /// worker wait predicate stays O(1).
  std::map<int, std::deque<std::function<void()>>, std::greater<int>> queue_;
  size_t num_queued_ = 0;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Sensible default worker count: hardware concurrency, at least 1.
size_t DefaultThreadCount();

/// Worker count from an environment variable (e.g. OCA_THREADS, the CI
/// thread matrix's knob): the variable's value when it parses as a
/// positive integer, `fallback` when unset or malformed. One parser for
/// every OCA_THREADS consumer so the env contract cannot drift.
size_t ThreadCountFromEnv(const char* name, size_t fallback);

}  // namespace oca

#endif  // OCA_UTIL_THREAD_POOL_H_
