// Disjoint-set forest with union by rank and path halving.
//
// Used by: connected components, configuration-model repair, k-clique
// percolation, and community merge postprocessing.

#ifndef OCA_UTIL_UNION_FIND_H_
#define OCA_UTIL_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oca {

/// Disjoint-set over the integers [0, size). Near-O(1) amortized ops.
class UnionFind {
 public:
  explicit UnionFind(size_t size);

  /// Returns the canonical representative of x's set (with path halving).
  uint32_t Find(uint32_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  /// True when a and b are currently in the same set.
  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Number of elements in x's set.
  uint32_t SetSize(uint32_t x) { return size_[Find(x)]; }

  /// Current number of disjoint sets.
  size_t num_sets() const { return num_sets_; }

  size_t size() const { return parent_.size(); }

  /// Groups all elements by representative; each inner vector is one set,
  /// elements in ascending order, sets ordered by smallest element.
  std::vector<std::vector<uint32_t>> Groups();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> rank_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
};

}  // namespace oca

#endif  // OCA_UTIL_UNION_FIND_H_
