#include "spectral/extreme_eigen.h"

#include "spectral/spectral_engine.h"

namespace oca {

// Both free functions are API-compatible wrappers over SpectralEngine;
// construct a fresh engine per call (workspace reuse and caching belong
// to callers that hold an engine across calls, e.g. RunOca /
// BuildHierarchy).

Result<ExtremeEigenvalues> ComputeExtremeEigenvalues(
    const Graph& graph, const PowerMethodOptions& options) {
  SpectralEngine engine(ValueSolveOptionsFrom(options));
  return engine.Extremes(graph);
}

Result<double> ComputeCouplingConstant(const Graph& graph,
                                       const PowerMethodOptions& options) {
  SpectralEngine engine(ValueSolveOptionsFrom(options));
  OCA_ASSIGN_OR_RETURN(CouplingResult result,
                       engine.CouplingConstant(graph));
  return result.c;
}

}  // namespace oca
