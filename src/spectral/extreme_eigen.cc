#include "spectral/extreme_eigen.h"

#include <cmath>

#include "util/random.h"

namespace oca {

namespace {

double Norm2(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

}  // namespace

Result<ExtremeEigenvalues> ComputeExtremeEigenvalues(
    const Graph& graph, const PowerMethodOptions& options) {
  OCA_ASSIGN_OR_RETURN(EigenEstimate dominant, DominantEigenpair(graph, options));

  ExtremeEigenvalues out;
  out.lambda_max = dominant.eigenvalue;
  out.iterations_max = dominant.iterations;

  // Power iteration on B = A - sI with s slightly above the lambda_max
  // estimate: every eigenvalue of B is <= 0 and the most negative one,
  // lambda_min - s, strictly dominates in magnitude (s >= lambda_max >=
  // lambda_i > lambda_min gives s - lambda_i < s - lambda_min), so the
  // iteration converges to the lambda_min eigenvector regardless of
  // bipartiteness — and with a near-optimal ratio, unlike a crude
  // max-degree shift.
  const double shift = dominant.eigenvalue * (1.0 + 1e-6) + 1e-9;
  const size_t n = graph.num_nodes();

  Rng rng(options.seed ^ 0xB16B00B5ull);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();
  double norm = Norm2(x);
  for (double& v : x) v /= norm;

  std::vector<double> y;
  double prev_mu = 0.0;
  bool converged = false;
  size_t iterations = 0;
  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    ShiftedAdjacencyMatVec(graph, shift, x, &y);
    norm = Norm2(y);
    if (norm == 0.0) {
      for (double& v : x) v = rng.NextGaussian();
      norm = Norm2(x);
      for (double& v : x) v /= norm;
      continue;
    }
    for (size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    // Rayleigh quotient of x under A (not B) estimates lambda_min.
    double mu = RayleighQuotient(graph, x);
    iterations = iter;
    double denom = std::max(1.0, std::fabs(mu));
    if (iter > 1 && std::fabs(mu - prev_mu) / denom < options.tolerance) {
      converged = true;
      prev_mu = mu;
      break;
    }
    prev_mu = mu;
  }
  out.lambda_min = prev_mu;
  out.iterations_min = iterations;
  out.converged = converged;
  return out;
}

Result<double> ComputeCouplingConstant(const Graph& graph,
                                       const PowerMethodOptions& options) {
  OCA_ASSIGN_OR_RETURN(ExtremeEigenvalues eig,
                       ComputeExtremeEigenvalues(graph, options));
  if (eig.lambda_min >= 0.0) {
    return Status::Internal(
        "lambda_min must be negative for a graph with edges");
  }
  double c = -1.0 / eig.lambda_min;
  // Definition 1 requires 0 <= c < 1; a graph with an edge has
  // lambda_min <= -1, so c <= 1. Numerical error can push it epsilon over;
  // clamp into the valid open interval.
  if (c >= 1.0) c = 1.0 - 1e-9;
  if (c <= 0.0) {
    return Status::Internal("coupling constant must be positive");
  }
  return c;
}

}  // namespace oca
