// Internal: the single row-loop skeleton both CSR kernel TUs compile.
//
// Included only by csr_matvec.cc (portable body) and
// csr_matvec_avx2.cc (gather body). The row structure — body/tail
// split, tail accumulation order, fused Rayleigh partial — lives here
// exactly once; an implementation supplies only the four-accumulator
// body sum for a full 4-multiple span. Keeping the skeleton shared is
// what makes the bit-identity contract in csr_matvec.h checkable by
// inspection: a body returns (a0 + a2) + (a1 + a3) over the striped
// lanes, and everything around it is literally the same code.
//
// Both TUs are compiled with -ffp-contract=off (see src/CMakeLists.txt)
// so the fused `acc += sum * x[u]` update cannot be contracted into an
// FMA in one TU but not the other.

#ifndef OCA_SPECTRAL_CSR_MATVEC_ROWS_H_
#define OCA_SPECTRAL_CSR_MATVEC_ROWS_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace oca {
namespace internal {

/// `Body(nbr, b, body_end, x)` returns the striped four-accumulator sum
/// of x[nbr[e]] over [b, body_end), a span whose length is a multiple
/// of 4, combined as (a0 + a2) + (a1 + a3).
template <bool kFused, typename Body>
inline double CsrRowLoop(const uint64_t* offs, const NodeId* nbr,
                         size_t begin, size_t end, const double* x, double* y,
                         Body body) {
  double block_acc = 0.0;
  for (size_t u = begin; u < end; ++u) {
    const uint64_t b = offs[u];
    const uint64_t e = offs[u + 1];
    const uint64_t body_end = b + ((e - b) & ~uint64_t{3});
    double sum = body(nbr, b, body_end, x);
    for (uint64_t p = body_end; p < e; ++p) sum += x[nbr[p]];
    y[u] = sum;
    if constexpr (kFused) block_acc += sum * x[u];
  }
  return block_acc;
}

#if defined(OCA_HAVE_AVX2)
// Defined in csr_matvec_avx2.cc (compiled with -mavx2); called by the
// dispatcher in csr_matvec.cc only after a runtime CPU check.
void Avx2Rows(const uint64_t* offs, const NodeId* nbr, size_t begin,
              size_t end, const double* x, double* y);
double Avx2RowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                     size_t end, const double* x, double* y);
#endif

}  // namespace internal
}  // namespace oca

#endif  // OCA_SPECTRAL_CSR_MATVEC_ROWS_H_
