// Internal: the single row-loop skeleton both CSR kernel TUs compile.
//
// Included only by csr_matvec.cc (portable body) and
// csr_matvec_avx2.cc (gather body). The row structure — body/tail
// split, tail accumulation order, fused Rayleigh partial — lives here
// exactly once; an implementation supplies only the four-accumulator
// body sum for a full 4-multiple span. Keeping the skeleton shared is
// what makes the bit-identity contract in csr_matvec.h checkable by
// inspection: a body returns (a0 + a2) + (a1 + a3) over the striped
// lanes, and everything around it is literally the same code.
//
// Both TUs are compiled with -ffp-contract=off (see src/CMakeLists.txt)
// so the fused `acc += sum * x[u]` update cannot be contracted into an
// FMA in one TU but not the other.

#ifndef OCA_SPECTRAL_CSR_MATVEC_ROWS_H_
#define OCA_SPECTRAL_CSR_MATVEC_ROWS_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "spectral/csr_matvec.h"

namespace oca {
namespace internal {

/// `Body(nbr, b, body_end, x)` returns the striped four-accumulator sum
/// of x[nbr[e]] over [b, body_end), a span whose length is a multiple
/// of 4, combined as (a0 + a2) + (a1 + a3).
template <bool kFused, typename Body>
inline double CsrRowLoop(const uint64_t* offs, const NodeId* nbr,
                         size_t begin, size_t end, const double* x, double* y,
                         Body body) {
  double block_acc = 0.0;
  for (size_t u = begin; u < end; ++u) {
    const uint64_t b = offs[u];
    const uint64_t e = offs[u + 1];
    const uint64_t body_end = b + ((e - b) & ~uint64_t{3});
    double sum = body(nbr, b, body_end, x);
    for (uint64_t p = body_end; p < e; ++p) sum += x[nbr[p]];
    y[u] = sum;
    if constexpr (kFused) block_acc += sum * x[u];
  }
  return block_acc;
}

/// Weighted row loop: identical skeleton, but each edge contributes
/// w[e] * x[nbr[e]]. `Body(nbr, w, b, body_end, x)` returns the striped
/// four-accumulator weighted sum over the 4-multiple span, combined as
/// (a0 + a2) + (a1 + a3); every product is a separate multiply THEN add
/// (never an FMA — both TUs build with -ffp-contract=off) so the
/// portable and AVX2 weighted kernels stay bit-identical exactly like
/// the unweighted pair.
template <bool kFused, typename Body>
inline double CsrRowLoopW(const uint64_t* offs, const NodeId* nbr,
                          const double* w, size_t begin, size_t end,
                          const double* x, double* y, Body body) {
  double block_acc = 0.0;
  for (size_t u = begin; u < end; ++u) {
    const uint64_t b = offs[u];
    const uint64_t e = offs[u + 1];
    const uint64_t body_end = b + ((e - b) & ~uint64_t{3});
    double sum = body(nbr, w, b, body_end, x);
    for (uint64_t p = body_end; p < e; ++p) sum += w[p] * x[nbr[p]];
    y[u] = sum;
    if constexpr (kFused) block_acc += sum * x[u];
  }
  return block_acc;
}

/// Multi-vector (SpMM) row loop: k interleaved right-hand sides in one
/// CSR sweep. Layout is node-major — column j of node v lives at
/// x[v * k + j] — so one edge visit touches one contiguous k-wide
/// strip, which is what turns per-edge gathers into contiguous loads.
///
/// Column-wise bit-identity with k single CsrRowLoop passes holds by
/// the same construction as the scalar kernel: a multi body keeps the
/// four striped accumulators PER COLUMN, combines each column as
/// (a0 + a2) + (a1 + a3), and the scalar tail + fused Rayleigh partial
/// below append to every column in the same order the single-vector
/// loop would. `MultiBody(nbr, b, body_end, x, sums)` fills sums[0..k)
/// with the striped body sum of its column.
///
/// When kFused, fused_acc[j] accumulates sum_u y_j[u] * x_j[u] over the
/// row range in row order — the same addition sequence the scalar fused
/// kernel produces for column j (fused_acc must be zeroed or carry the
/// caller's running partial).
template <bool kFused, size_t kWidth, typename MultiBody>
inline void CsrMultiRowLoop(const uint64_t* offs, const NodeId* nbr,
                            size_t begin, size_t end, const double* x,
                            double* y, double* fused_acc, MultiBody body) {
  static_assert(kWidth >= 1 && kWidth <= kMaxMatVecBatch);
  double sums[kWidth];
  for (size_t u = begin; u < end; ++u) {
    const uint64_t b = offs[u];
    const uint64_t e = offs[u + 1];
    const uint64_t body_end = b + ((e - b) & ~uint64_t{3});
    body(nbr, b, body_end, x, sums);
    for (uint64_t p = body_end; p < e; ++p) {
      const double* xv = x + static_cast<size_t>(nbr[p]) * kWidth;
      for (size_t j = 0; j < kWidth; ++j) sums[j] += xv[j];
    }
    double* yu = y + u * kWidth;
    for (size_t j = 0; j < kWidth; ++j) yu[j] = sums[j];
    if constexpr (kFused) {
      const double* xu = x + u * kWidth;
      for (size_t j = 0; j < kWidth; ++j) fused_acc[j] += sums[j] * xu[j];
    }
  }
}

/// Weighted multi-vector row loop: the CsrMultiRowLoop skeleton with
/// each edge scaling its k-wide strip by w[e]. Same per-column
/// bit-identity construction; `MultiBody(nbr, w, b, body_end, x, sums)`.
template <bool kFused, size_t kWidth, typename MultiBody>
inline void CsrMultiRowLoopW(const uint64_t* offs, const NodeId* nbr,
                             const double* w, size_t begin, size_t end,
                             const double* x, double* y, double* fused_acc,
                             MultiBody body) {
  static_assert(kWidth >= 1 && kWidth <= kMaxMatVecBatch);
  double sums[kWidth];
  for (size_t u = begin; u < end; ++u) {
    const uint64_t b = offs[u];
    const uint64_t e = offs[u + 1];
    const uint64_t body_end = b + ((e - b) & ~uint64_t{3});
    body(nbr, w, b, body_end, x, sums);
    for (uint64_t p = body_end; p < e; ++p) {
      const double* xv = x + static_cast<size_t>(nbr[p]) * kWidth;
      const double we = w[p];
      for (size_t j = 0; j < kWidth; ++j) sums[j] += we * xv[j];
    }
    double* yu = y + u * kWidth;
    for (size_t j = 0; j < kWidth; ++j) yu[j] = sums[j];
    if constexpr (kFused) {
      const double* xu = x + u * kWidth;
      for (size_t j = 0; j < kWidth; ++j) fused_acc[j] += sums[j] * xu[j];
    }
  }
}

/// Portable multi body: the scalar kernel's four striped accumulator
/// chains, kept independently per column. acc[lane][j] adds exactly the
/// elements the single-vector kernel's lane accumulator adds for column
/// j, in the same order, and the combine is the same
/// (a0 + a2) + (a1 + a3) per column — bit-identity by construction.
/// Lives here (not in csr_matvec.cc) because the AVX2 TU reuses it as
/// the fallback body for widths without a vector specialization.
template <size_t kWidth>
struct PortableMultiBody {
  void operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                  const double* x, double* out) const {
    double acc[4][kWidth] = {};
    for (uint64_t p = b; p < body_end; p += 4) {
      for (int lane = 0; lane < 4; ++lane) {
        const double* xv = x + static_cast<size_t>(nbr[p + lane]) * kWidth;
        for (size_t j = 0; j < kWidth; ++j) acc[lane][j] += xv[j];
      }
    }
    for (size_t j = 0; j < kWidth; ++j) {
      out[j] = (acc[0][j] + acc[2][j]) + (acc[1][j] + acc[3][j]);
    }
  }
};

/// Weighted portable multi body: acc[lane][j] += w * x strips, same
/// striping and combine as PortableMultiBody with each strip scaled by
/// its edge weight (separate multiply, never contracted — see above).
template <size_t kWidth>
struct PortableWeightedMultiBody {
  void operator()(const NodeId* nbr, const double* w, uint64_t b,
                  uint64_t body_end, const double* x, double* out) const {
    double acc[4][kWidth] = {};
    for (uint64_t p = b; p < body_end; p += 4) {
      for (int lane = 0; lane < 4; ++lane) {
        const double* xv = x + static_cast<size_t>(nbr[p + lane]) * kWidth;
        const double we = w[p + lane];
        for (size_t j = 0; j < kWidth; ++j) acc[lane][j] += we * xv[j];
      }
    }
    for (size_t j = 0; j < kWidth; ++j) {
      out[j] = (acc[0][j] + acc[2][j]) + (acc[1][j] + acc[3][j]);
    }
  }
};

/// Runs the portable multi loop at compile-time width `k`. Shared by
/// both TUs: the portable dispatcher uses it for every width, the AVX2
/// one for widths without a gather-free specialization.
template <bool kFused>
inline void PortableMultiRows(const uint64_t* offs, const NodeId* nbr,
                              size_t begin, size_t end, const double* x,
                              double* y, size_t k, double* fused_acc) {
  switch (k) {
    case 2:
      CsrMultiRowLoop<kFused, 2>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<2>{});
      return;
    case 3:
      CsrMultiRowLoop<kFused, 3>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<3>{});
      return;
    case 4:
      CsrMultiRowLoop<kFused, 4>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<4>{});
      return;
    case 5:
      CsrMultiRowLoop<kFused, 5>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<5>{});
      return;
    case 6:
      CsrMultiRowLoop<kFused, 6>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<6>{});
      return;
    case 7:
      CsrMultiRowLoop<kFused, 7>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<7>{});
      return;
    case 8:
      CsrMultiRowLoop<kFused, 8>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<8>{});
      return;
    default:
      CsrMultiRowLoop<kFused, 1>(offs, nbr, begin, end, x, y, fused_acc,
                                 PortableMultiBody<1>{});
      return;
  }
}

/// Weighted analogue of PortableMultiRows.
template <bool kFused>
inline void PortableWeightedMultiRows(const uint64_t* offs, const NodeId* nbr,
                                      const double* w, size_t begin,
                                      size_t end, const double* x, double* y,
                                      size_t k, double* fused_acc) {
  switch (k) {
    case 2:
      CsrMultiRowLoopW<kFused, 2>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<2>{});
      return;
    case 3:
      CsrMultiRowLoopW<kFused, 3>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<3>{});
      return;
    case 4:
      CsrMultiRowLoopW<kFused, 4>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<4>{});
      return;
    case 5:
      CsrMultiRowLoopW<kFused, 5>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<5>{});
      return;
    case 6:
      CsrMultiRowLoopW<kFused, 6>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<6>{});
      return;
    case 7:
      CsrMultiRowLoopW<kFused, 7>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<7>{});
      return;
    case 8:
      CsrMultiRowLoopW<kFused, 8>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<8>{});
      return;
    default:
      CsrMultiRowLoopW<kFused, 1>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  PortableWeightedMultiBody<1>{});
      return;
  }
}

#if defined(OCA_HAVE_AVX2)
// Defined in csr_matvec_avx2.cc (compiled with -mavx2); called by the
// dispatcher in csr_matvec.cc only after a runtime CPU check.
void Avx2Rows(const uint64_t* offs, const NodeId* nbr, size_t begin,
              size_t end, const double* x, double* y);
double Avx2RowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                     size_t end, const double* x, double* y);
void Avx2MultiRows(const uint64_t* offs, const NodeId* nbr, size_t begin,
                   size_t end, const double* x, double* y, size_t k);
void Avx2MultiRowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                        size_t end, const double* x, double* y, size_t k,
                        double* fused_acc);
void Avx2WeightedRows(const uint64_t* offs, const NodeId* nbr, const double* w,
                      size_t begin, size_t end, const double* x, double* y);
double Avx2WeightedRowsFused(const uint64_t* offs, const NodeId* nbr,
                             const double* w, size_t begin, size_t end,
                             const double* x, double* y);
void Avx2WeightedMultiRows(const uint64_t* offs, const NodeId* nbr,
                           const double* w, size_t begin, size_t end,
                           const double* x, double* y, size_t k);
void Avx2WeightedMultiRowsFused(const uint64_t* offs, const NodeId* nbr,
                                const double* w, size_t begin, size_t end,
                                const double* x, double* y, size_t k,
                                double* fused_acc);
#endif

}  // namespace internal
}  // namespace oca

#endif  // OCA_SPECTRAL_CSR_MATVEC_ROWS_H_
