#include "spectral/power_method.h"

#include <cmath>

#include "util/random.h"

namespace oca {

namespace {

double Norm2(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

void Normalize(std::vector<double>* x) {
  double norm = Norm2(*x);
  if (norm > 0.0) {
    for (double& v : *x) v /= norm;
  }
}

std::vector<double> RandomUnitVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();
  Normalize(&x);
  return x;
}

}  // namespace

void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y) {
  const size_t n = graph.num_nodes();
  y->assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    double sum = 0.0;
    for (NodeId v : graph.Neighbors(u)) {
      sum += x[v];
    }
    (*y)[u] = sum;
  }
}

void ShiftedAdjacencyMatVec(const Graph& graph, double shift,
                            const std::vector<double>& x,
                            std::vector<double>* y) {
  AdjacencyMatVec(graph, x, y);
  const size_t n = graph.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    (*y)[i] -= shift * x[i];
  }
}

double RayleighQuotient(const Graph& graph, const std::vector<double>& x) {
  std::vector<double> y;
  AdjacencyMatVec(graph, x, &y);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += x[i] * y[i];
    den += x[i] * x[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

Result<EigenEstimate> DominantEigenpair(const Graph& graph,
                                        const PowerMethodOptions& options) {
  const size_t n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("power method on empty graph");
  }
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition(
        "power method on edgeless graph: adjacency matrix is zero");
  }

  // Iterate on A + sI: lambda_max + s strictly dominates |lambda_i + s|
  // for every other eigenvalue as soon as s > 0 (|lambda_min| <= lambda_max
  // by Perron-Frobenius, with equality exactly for bipartite graphs,
  // where the tie would stall plain power iteration). A small shift keeps
  // the convergence ratio (lambda_2 + s)/(lambda_max + s) low.
  const double shift = 1.0;

  EigenEstimate est;
  std::vector<double> x = RandomUnitVector(n, options.seed);
  std::vector<double> y;
  double prev = 0.0;
  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    ShiftedAdjacencyMatVec(graph, -shift, x, &y);  // y = (A + sI) x
    double norm = Norm2(y);
    if (norm == 0.0) {
      // x landed exactly in the null space; restart from a new vector.
      x = RandomUnitVector(n, options.seed + iter);
      continue;
    }
    for (size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    double lambda = RayleighQuotient(graph, x);
    est.iterations = iter;
    double denom = std::max(1.0, std::fabs(lambda));
    if (iter > 1 && std::fabs(lambda - prev) / denom < options.tolerance) {
      est.eigenvalue = lambda;
      est.eigenvector = x;
      est.converged = true;
      return est;
    }
    prev = lambda;
  }
  est.eigenvalue = prev;
  est.eigenvector = x;
  est.converged = false;
  return est;
}

}  // namespace oca
