#include "spectral/power_method.h"

#include <cmath>

#include "spectral/spectral_engine.h"

namespace oca {

void AdjacencyMatVecRows(const Graph& graph, size_t begin, size_t end,
                         const double* x, double* y) {
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
  for (size_t u = begin; u < end; ++u) {
    double sum = 0.0;
    for (uint64_t e = offs[u]; e < offs[u + 1]; ++e) sum += x[nbr[e]];
    y[u] = sum;
  }
}

void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y) {
  y->resize(graph.num_nodes());
  AdjacencyMatVecRows(graph, 0, graph.num_nodes(), x.data(), y->data());
}

void ShiftedAdjacencyMatVec(const Graph& graph, double shift,
                            const std::vector<double>& x,
                            std::vector<double>* y) {
  AdjacencyMatVec(graph, x, y);
  const size_t n = graph.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    (*y)[i] -= shift * x[i];
  }
}

double RayleighQuotient(const Graph& graph, const std::vector<double>& x) {
  std::vector<double> y;
  AdjacencyMatVec(graph, x, &y);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += x[i] * y[i];
    den += x[i] * x[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

Result<EigenEstimate> DominantEigenpair(const Graph& graph,
                                        const PowerMethodOptions& options) {
  // Eigenpair entry point: pm.max_iterations caps Lanczos steps as-is.
  SpectralEngine engine(EngineOptionsFrom(options, options.max_iterations));
  return engine.Dominant(graph, options);
}

}  // namespace oca
