#include "spectral/power_method.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "spectral/spectral_engine.h"

namespace oca {

namespace {

void CheckVectorArgs(const char* entry, const Graph& graph,
                     const std::vector<double>& x,
                     const std::vector<double>* y) {
  if (x.size() != graph.num_nodes()) {
    internal::KernelContractViolation(
        (std::string(entry) + ": x.size() != graph.num_nodes()").c_str());
  }
  if (y == nullptr) {
    internal::KernelContractViolation(
        (std::string(entry) + ": output vector is null").c_str());
  }
  if (y == &x) {
    internal::KernelContractViolation(
        (std::string(entry) + ": output must not alias x").c_str());
  }
}

}  // namespace

void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y) {
  CheckVectorArgs("AdjacencyMatVec", graph, x, y);
  y->resize(graph.num_nodes());
  AdjacencyMatVecRows(graph, 0, graph.num_nodes(), x.data(), y->data());
}

void ShiftedAdjacencyMatVec(const Graph& graph, double shift,
                            const std::vector<double>& x,
                            std::vector<double>* y) {
  AdjacencyMatVec(graph, x, y);
  const size_t n = graph.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    (*y)[i] -= shift * x[i];
  }
}

void AdjacencyMatVecMulti(const Graph& graph, const std::vector<double>& x,
                          std::vector<double>* y, size_t k) {
  const size_t n = graph.num_nodes();
  if (k < 1 || x.size() != n * k) {
    internal::KernelContractViolation(
        "AdjacencyMatVecMulti: x.size() != graph.num_nodes() * k");
  }
  if (y == nullptr || y == &x) {
    internal::KernelContractViolation(
        "AdjacencyMatVecMulti: output vector is null or aliases x");
  }
  y->resize(n * k);
  AdjacencyMatVecMultiRows(graph, 0, n, x.data(), y->data(), k);
}

double RayleighQuotient(const Graph& graph, const std::vector<double>& x,
                        std::vector<double>* workspace) {
  CheckVectorArgs("RayleighQuotient", graph, x, workspace);
  const size_t n = graph.num_nodes();
  workspace->resize(n);
  // One fused pass per block: the numerator partials accumulate in the
  // same deterministic block order as the engine's Lanczos alpha
  // reduction (MatVecBlockRows is a pure function of n).
  const size_t block = MatVecBlockRows(n);
  double num = 0.0;
  for (size_t begin = 0; begin < n; begin += block) {
    num += AdjacencyMatVecRowsFused(graph, begin, std::min(n, begin + block),
                                    x.data(), workspace->data());
  }
  double den = 0.0;
  for (size_t i = 0; i < n; ++i) den += x[i] * x[i];
  return den > 0.0 ? num / den : 0.0;
}

double RayleighQuotient(const Graph& graph, const std::vector<double>& x) {
  std::vector<double> workspace;
  return RayleighQuotient(graph, x, &workspace);
}

Result<EigenEstimate> DominantEigenpair(const Graph& graph,
                                        const PowerMethodOptions& options) {
  // Eigenpair entry point: pm.max_iterations caps Lanczos steps as-is.
  SpectralEngine engine(EngineOptionsFrom(options, options.max_iterations));
  return engine.Dominant(graph, options);
}

}  // namespace oca
