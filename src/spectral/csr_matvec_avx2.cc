// AVX2 implementation of the CSR row kernel. Compiled with -mavx2
// -ffp-contract=off only when OCA_ENABLE_AVX2 is on and the compiler
// supports the flag; csr_matvec.cc calls in here only after
// __builtin_cpu_supports("avx2") passes at runtime, so the library
// still runs on pre-AVX2 hardware.
//
// Bit-identity with the portable kernel (the whole point — see
// csr_matvec.h): lane j of the gather accumulator sums exactly the
// elements the portable kernel's accumulator a_j sums, in the same
// order, and the horizontal reduction (lo128 + hi128, then hadd)
// computes (a0 + a2) + (a1 + a3) — the portable combine expression.

#if defined(OCA_HAVE_AVX2)

// GCC's avx2intrin.h trips -Wmaybe-uninitialized on the
// _mm256_undefined_pd inside _mm256_i32gather_pd (a known false
// positive in the intrinsic header, not in this code).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "spectral/csr_matvec_rows.h"

namespace oca {
namespace internal {

namespace {

struct Avx2Body {
  double operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                    const double* x) const {
    __m256d acc = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbr + p));
      acc = _mm256_add_pd(acc, _mm256_i32gather_pd(x, idx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);     // (a0, a1)
    const __m128d hi = _mm256_extractf128_pd(acc, 1);   // (a2, a3)
    const __m128d pair = _mm_add_pd(lo, hi);            // (a0+a2, a1+a3)
    return _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));      // (a0+a2)+(a1+a3)
  }
};

// Multi-vector (SpMM) bodies. The node-major interleaved layout turns
// each lane's per-edge access into one CONTIGUOUS k-wide load — no
// gather at all, which is why the multi kernel scales past the scalar
// path even on short community-graph rows. Bit-identity per column:
// lane l's vector accumulator holds column j of the portable kernel's
// acc[l][j] (same elements, same order — vector lanes are independent
// adds), and the combine (acc0 + acc2) + (acc1 + acc3) is the portable
// per-column combine applied lanewise.

/// k = 2: four __m128d accumulators, one 16-byte load per edge.
struct Avx2MultiBody2 {
  void operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                  const double* x, double* out) const {
    __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 = _mm_add_pd(a0, _mm_loadu_pd(x + static_cast<size_t>(nbr[p]) * 2));
      a1 = _mm_add_pd(a1,
                      _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 1]) * 2));
      a2 = _mm_add_pd(a2,
                      _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 2]) * 2));
      a3 = _mm_add_pd(a3,
                      _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 3]) * 2));
    }
    _mm_storeu_pd(out, _mm_add_pd(_mm_add_pd(a0, a2), _mm_add_pd(a1, a3)));
  }
};

/// k = 4: four __m256d accumulators, one 32-byte load per edge.
struct Avx2MultiBody4 {
  void operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                  const double* x, double* out) const {
    __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 = _mm256_add_pd(a0,
                         _mm256_loadu_pd(x + static_cast<size_t>(nbr[p]) * 4));
      a1 = _mm256_add_pd(
          a1, _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 1]) * 4));
      a2 = _mm256_add_pd(
          a2, _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 2]) * 4));
      a3 = _mm256_add_pd(
          a3, _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 3]) * 4));
    }
    _mm256_storeu_pd(
        out, _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3)));
  }
};

/// k = 8: the k = 4 body over two 256-bit halves (columns 0-3, 4-7);
/// eight ymm accumulators still leave registers for the loads.
struct Avx2MultiBody8 {
  void operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                  const double* x, double* out) const {
    __m256d lo0 = _mm256_setzero_pd(), lo1 = _mm256_setzero_pd();
    __m256d lo2 = _mm256_setzero_pd(), lo3 = _mm256_setzero_pd();
    __m256d hi0 = _mm256_setzero_pd(), hi1 = _mm256_setzero_pd();
    __m256d hi2 = _mm256_setzero_pd(), hi3 = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      const double* v0 = x + static_cast<size_t>(nbr[p]) * 8;
      const double* v1 = x + static_cast<size_t>(nbr[p + 1]) * 8;
      const double* v2 = x + static_cast<size_t>(nbr[p + 2]) * 8;
      const double* v3 = x + static_cast<size_t>(nbr[p + 3]) * 8;
      lo0 = _mm256_add_pd(lo0, _mm256_loadu_pd(v0));
      hi0 = _mm256_add_pd(hi0, _mm256_loadu_pd(v0 + 4));
      lo1 = _mm256_add_pd(lo1, _mm256_loadu_pd(v1));
      hi1 = _mm256_add_pd(hi1, _mm256_loadu_pd(v1 + 4));
      lo2 = _mm256_add_pd(lo2, _mm256_loadu_pd(v2));
      hi2 = _mm256_add_pd(hi2, _mm256_loadu_pd(v2 + 4));
      lo3 = _mm256_add_pd(lo3, _mm256_loadu_pd(v3));
      hi3 = _mm256_add_pd(hi3, _mm256_loadu_pd(v3 + 4));
    }
    _mm256_storeu_pd(
        out, _mm256_add_pd(_mm256_add_pd(lo0, lo2), _mm256_add_pd(lo1, lo3)));
    _mm256_storeu_pd(out + 4, _mm256_add_pd(_mm256_add_pd(hi0, hi2),
                                            _mm256_add_pd(hi1, hi3)));
  }
};

// Weighted bodies: each edge contributes w[e] * x[...]. Weights are
// CONTIGUOUS in the CSR weight array, so the scalar kernel pairs one
// plain weight load with the index gather; the multi kernels broadcast
// the edge weight across the k-wide strip. Every product is mul_pd
// followed by add_pd — never an FMA — matching the portable weighted
// bodies' separate multiply-then-add under -ffp-contract=off, so the
// weighted pair is bit-identical the same way the unweighted pair is.

struct Avx2WeightedBody {
  double operator()(const NodeId* nbr, const double* w, uint64_t b,
                    uint64_t body_end, const double* x) const {
    __m256d acc = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbr + p));
      const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
      const __m256d wv = _mm256_loadu_pd(w + p);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, xv));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);     // (a0, a1)
    const __m128d hi = _mm256_extractf128_pd(acc, 1);   // (a2, a3)
    const __m128d pair = _mm_add_pd(lo, hi);            // (a0+a2, a1+a3)
    return _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));      // (a0+a2)+(a1+a3)
  }
};

/// k = 2 weighted: broadcast each edge weight over its 16-byte strip.
struct Avx2WeightedMultiBody2 {
  void operator()(const NodeId* nbr, const double* w, uint64_t b,
                  uint64_t body_end, const double* x, double* out) const {
    __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 = _mm_add_pd(
          a0, _mm_mul_pd(_mm_set1_pd(w[p]),
                         _mm_loadu_pd(x + static_cast<size_t>(nbr[p]) * 2)));
      a1 = _mm_add_pd(
          a1,
          _mm_mul_pd(_mm_set1_pd(w[p + 1]),
                     _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 1]) * 2)));
      a2 = _mm_add_pd(
          a2,
          _mm_mul_pd(_mm_set1_pd(w[p + 2]),
                     _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 2]) * 2)));
      a3 = _mm_add_pd(
          a3,
          _mm_mul_pd(_mm_set1_pd(w[p + 3]),
                     _mm_loadu_pd(x + static_cast<size_t>(nbr[p + 3]) * 2)));
    }
    _mm_storeu_pd(out, _mm_add_pd(_mm_add_pd(a0, a2), _mm_add_pd(a1, a3)));
  }
};

/// k = 4 weighted: one broadcast + one 32-byte load per edge.
struct Avx2WeightedMultiBody4 {
  void operator()(const NodeId* nbr, const double* w, uint64_t b,
                  uint64_t body_end, const double* x, double* out) const {
    __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 = _mm256_add_pd(
          a0,
          _mm256_mul_pd(_mm256_set1_pd(w[p]),
                        _mm256_loadu_pd(x + static_cast<size_t>(nbr[p]) * 4)));
      a1 = _mm256_add_pd(
          a1, _mm256_mul_pd(
                  _mm256_set1_pd(w[p + 1]),
                  _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 1]) * 4)));
      a2 = _mm256_add_pd(
          a2, _mm256_mul_pd(
                  _mm256_set1_pd(w[p + 2]),
                  _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 2]) * 4)));
      a3 = _mm256_add_pd(
          a3, _mm256_mul_pd(
                  _mm256_set1_pd(w[p + 3]),
                  _mm256_loadu_pd(x + static_cast<size_t>(nbr[p + 3]) * 4)));
    }
    _mm256_storeu_pd(
        out, _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3)));
  }
};

/// k = 8 weighted: one broadcast shared by the two 256-bit halves.
struct Avx2WeightedMultiBody8 {
  void operator()(const NodeId* nbr, const double* w, uint64_t b,
                  uint64_t body_end, const double* x, double* out) const {
    __m256d lo0 = _mm256_setzero_pd(), lo1 = _mm256_setzero_pd();
    __m256d lo2 = _mm256_setzero_pd(), lo3 = _mm256_setzero_pd();
    __m256d hi0 = _mm256_setzero_pd(), hi1 = _mm256_setzero_pd();
    __m256d hi2 = _mm256_setzero_pd(), hi3 = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      const double* v0 = x + static_cast<size_t>(nbr[p]) * 8;
      const double* v1 = x + static_cast<size_t>(nbr[p + 1]) * 8;
      const double* v2 = x + static_cast<size_t>(nbr[p + 2]) * 8;
      const double* v3 = x + static_cast<size_t>(nbr[p + 3]) * 8;
      const __m256d w0 = _mm256_set1_pd(w[p]);
      const __m256d w1 = _mm256_set1_pd(w[p + 1]);
      const __m256d w2 = _mm256_set1_pd(w[p + 2]);
      const __m256d w3 = _mm256_set1_pd(w[p + 3]);
      lo0 = _mm256_add_pd(lo0, _mm256_mul_pd(w0, _mm256_loadu_pd(v0)));
      hi0 = _mm256_add_pd(hi0, _mm256_mul_pd(w0, _mm256_loadu_pd(v0 + 4)));
      lo1 = _mm256_add_pd(lo1, _mm256_mul_pd(w1, _mm256_loadu_pd(v1)));
      hi1 = _mm256_add_pd(hi1, _mm256_mul_pd(w1, _mm256_loadu_pd(v1 + 4)));
      lo2 = _mm256_add_pd(lo2, _mm256_mul_pd(w2, _mm256_loadu_pd(v2)));
      hi2 = _mm256_add_pd(hi2, _mm256_mul_pd(w2, _mm256_loadu_pd(v2 + 4)));
      lo3 = _mm256_add_pd(lo3, _mm256_mul_pd(w3, _mm256_loadu_pd(v3)));
      hi3 = _mm256_add_pd(hi3, _mm256_mul_pd(w3, _mm256_loadu_pd(v3 + 4)));
    }
    _mm256_storeu_pd(
        out, _mm256_add_pd(_mm256_add_pd(lo0, lo2), _mm256_add_pd(lo1, lo3)));
    _mm256_storeu_pd(out + 4, _mm256_add_pd(_mm256_add_pd(hi0, hi2),
                                            _mm256_add_pd(hi1, hi3)));
  }
};

template <bool kFused>
void Avx2MultiDispatch(const uint64_t* offs, const NodeId* nbr, size_t begin,
                       size_t end, const double* x, double* y, size_t k,
                       double* fused_acc) {
  switch (k) {
    case 2:
      CsrMultiRowLoop<kFused, 2>(offs, nbr, begin, end, x, y, fused_acc,
                                 Avx2MultiBody2{});
      return;
    case 4:
      CsrMultiRowLoop<kFused, 4>(offs, nbr, begin, end, x, y, fused_acc,
                                 Avx2MultiBody4{});
      return;
    case 8:
      CsrMultiRowLoop<kFused, 8>(offs, nbr, begin, end, x, y, fused_acc,
                                 Avx2MultiBody8{});
      return;
    default:
      // Odd widths reuse the shared portable body — same bits (the
      // contract), no vector win worth a bespoke shuffle sequence.
      PortableMultiRows<kFused>(offs, nbr, begin, end, x, y, k, fused_acc);
      return;
  }
}

template <bool kFused>
void Avx2WeightedMultiDispatch(const uint64_t* offs, const NodeId* nbr,
                               const double* w, size_t begin, size_t end,
                               const double* x, double* y, size_t k,
                               double* fused_acc) {
  switch (k) {
    case 2:
      CsrMultiRowLoopW<kFused, 2>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  Avx2WeightedMultiBody2{});
      return;
    case 4:
      CsrMultiRowLoopW<kFused, 4>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  Avx2WeightedMultiBody4{});
      return;
    case 8:
      CsrMultiRowLoopW<kFused, 8>(offs, nbr, w, begin, end, x, y, fused_acc,
                                  Avx2WeightedMultiBody8{});
      return;
    default:
      PortableWeightedMultiRows<kFused>(offs, nbr, w, begin, end, x, y, k,
                                        fused_acc);
      return;
  }
}

}  // namespace

void Avx2Rows(const uint64_t* offs, const NodeId* nbr, size_t begin,
              size_t end, const double* x, double* y) {
  CsrRowLoop<false>(offs, nbr, begin, end, x, y, Avx2Body{});
}

double Avx2RowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                     size_t end, const double* x, double* y) {
  return CsrRowLoop<true>(offs, nbr, begin, end, x, y, Avx2Body{});
}

void Avx2MultiRows(const uint64_t* offs, const NodeId* nbr, size_t begin,
                   size_t end, const double* x, double* y, size_t k) {
  Avx2MultiDispatch<false>(offs, nbr, begin, end, x, y, k, nullptr);
}

void Avx2MultiRowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                        size_t end, const double* x, double* y, size_t k,
                        double* fused_acc) {
  Avx2MultiDispatch<true>(offs, nbr, begin, end, x, y, k, fused_acc);
}

void Avx2WeightedRows(const uint64_t* offs, const NodeId* nbr, const double* w,
                      size_t begin, size_t end, const double* x, double* y) {
  CsrRowLoopW<false>(offs, nbr, w, begin, end, x, y, Avx2WeightedBody{});
}

double Avx2WeightedRowsFused(const uint64_t* offs, const NodeId* nbr,
                             const double* w, size_t begin, size_t end,
                             const double* x, double* y) {
  return CsrRowLoopW<true>(offs, nbr, w, begin, end, x, y, Avx2WeightedBody{});
}

void Avx2WeightedMultiRows(const uint64_t* offs, const NodeId* nbr,
                           const double* w, size_t begin, size_t end,
                           const double* x, double* y, size_t k) {
  Avx2WeightedMultiDispatch<false>(offs, nbr, w, begin, end, x, y, k, nullptr);
}

void Avx2WeightedMultiRowsFused(const uint64_t* offs, const NodeId* nbr,
                                const double* w, size_t begin, size_t end,
                                const double* x, double* y, size_t k,
                                double* fused_acc) {
  Avx2WeightedMultiDispatch<true>(offs, nbr, w, begin, end, x, y, k,
                                  fused_acc);
}

}  // namespace internal
}  // namespace oca

#endif  // OCA_HAVE_AVX2
