// AVX2 implementation of the CSR row kernel. Compiled with -mavx2
// -ffp-contract=off only when OCA_ENABLE_AVX2 is on and the compiler
// supports the flag; csr_matvec.cc calls in here only after
// __builtin_cpu_supports("avx2") passes at runtime, so the library
// still runs on pre-AVX2 hardware.
//
// Bit-identity with the portable kernel (the whole point — see
// csr_matvec.h): lane j of the gather accumulator sums exactly the
// elements the portable kernel's accumulator a_j sums, in the same
// order, and the horizontal reduction (lo128 + hi128, then hadd)
// computes (a0 + a2) + (a1 + a3) — the portable combine expression.

#if defined(OCA_HAVE_AVX2)

// GCC's avx2intrin.h trips -Wmaybe-uninitialized on the
// _mm256_undefined_pd inside _mm256_i32gather_pd (a known false
// positive in the intrinsic header, not in this code).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "spectral/csr_matvec_rows.h"

namespace oca {
namespace internal {

namespace {

struct Avx2Body {
  double operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                    const double* x) const {
    __m256d acc = _mm256_setzero_pd();
    for (uint64_t p = b; p < body_end; p += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbr + p));
      acc = _mm256_add_pd(acc, _mm256_i32gather_pd(x, idx, 8));
    }
    const __m128d lo = _mm256_castpd256_pd128(acc);     // (a0, a1)
    const __m128d hi = _mm256_extractf128_pd(acc, 1);   // (a2, a3)
    const __m128d pair = _mm_add_pd(lo, hi);            // (a0+a2, a1+a3)
    return _mm_cvtsd_f64(_mm_hadd_pd(pair, pair));      // (a0+a2)+(a1+a3)
  }
};

}  // namespace

void Avx2Rows(const uint64_t* offs, const NodeId* nbr, size_t begin,
              size_t end, const double* x, double* y) {
  CsrRowLoop<false>(offs, nbr, begin, end, x, y, Avx2Body{});
}

double Avx2RowsFused(const uint64_t* offs, const NodeId* nbr, size_t begin,
                     size_t end, const double* x, double* y) {
  return CsrRowLoop<true>(offs, nbr, begin, end, x, y, Avx2Body{});
}

}  // namespace internal
}  // namespace oca

#endif  // OCA_HAVE_AVX2
