#include "spectral/csr_matvec.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "spectral/csr_matvec_rows.h"

namespace oca {

namespace {

/// Portable body: four independent accumulator chains over the striped
/// lanes. The chains break the serial add-latency dependency the old
/// single-accumulator loop was bound by (~4 cycles per edge on current
/// cores) and give the compiler a layout it can auto-vectorize; the
/// combine order matches the AVX2 kernel's horizontal sum exactly.
struct PortableBody {
  double operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                    const double* x) const {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 += x[nbr[p]];
      a1 += x[nbr[p + 1]];
      a2 += x[nbr[p + 2]];
      a3 += x[nbr[p + 3]];
    }
    return (a0 + a2) + (a1 + a3);
  }
};

bool CpuHasAvx2() {
#if defined(OCA_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

CsrKernelKind ResolveKernelFromEnv() {
  if (const char* env = std::getenv("OCA_SIMD"); env != nullptr) {
    if (std::strcmp(env, "avx2") == 0) {
      return CpuHasAvx2() ? CsrKernelKind::kAvx2 : CsrKernelKind::kPortable;
    }
    // "portable"/"off"/"auto" (or anything unrecognized) all resolve to
    // the portable kernel — see below.
  }
  // Auto prefers the PORTABLE kernel: measured on the community-graph
  // row profile (mean degree ~20, x L1-resident), four independent
  // scalar load chains sustain ~2 loads/cycle while vgatherdpd manages
  // ~1 — 14.5us vs 18.4us on the 2000-node LFR mat-vec bench. The AVX2
  // path stays behind OCA_SIMD=avx2 / SetCsrKernel for wide-row
  // workloads and as the template for future ISA ports; results are
  // bit-identical either way, so the choice never affects digests.
  return CsrKernelKind::kPortable;
}

/// Resolved dispatch choice; -1 until first use. Relaxed atomics: every
/// transition is to a value that produces bit-identical results, so a
/// racing reader at worst runs one block on the previous kernel.
std::atomic<int> g_active_kernel{-1};

void CheckRowRange(const Graph& graph, size_t begin, size_t end,
                   const double* x, const double* y) {
  if (begin > end || end > graph.num_nodes()) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: row range out of bounds");
  }
  if (begin == end) return;  // empty range needs no buffers
  if (x == nullptr || y == nullptr) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: null vector argument");
  }
  if (x == y) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: x and y must not alias (y[u] is written "
        "while x entries are still being read)");
  }
}

}  // namespace

namespace internal {

void KernelContractViolation(const char* what) {
  std::fprintf(stderr, "[FATAL] CSR mat-vec contract violation: %s\n", what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* CsrKernelName(CsrKernelKind kind) {
  switch (kind) {
    case CsrKernelKind::kAvx2:
      return "avx2";
    case CsrKernelKind::kPortable:
      break;
  }
  return "portable";
}

bool CsrKernelAvailable(CsrKernelKind kind) {
  return kind == CsrKernelKind::kPortable || CpuHasAvx2();
}

CsrKernelKind ActiveCsrKernel() {
  int kind = g_active_kernel.load(std::memory_order_relaxed);
  if (kind < 0) {
    kind = static_cast<int>(ResolveKernelFromEnv());
    g_active_kernel.store(kind, std::memory_order_relaxed);
  }
  return static_cast<CsrKernelKind>(kind);
}

CsrKernelKind SetCsrKernel(CsrKernelKind kind) {
  if (!CsrKernelAvailable(kind)) kind = CsrKernelKind::kPortable;
  g_active_kernel.store(static_cast<int>(kind), std::memory_order_relaxed);
  return kind;
}

void AdjacencyMatVecRows(const Graph& graph, size_t begin, size_t end,
                         const double* x, double* y) {
  CheckRowRange(graph, begin, end, x, y);
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
#if defined(OCA_HAVE_AVX2)
  if (ActiveCsrKernel() == CsrKernelKind::kAvx2) {
    internal::Avx2Rows(offs, nbr, begin, end, x, y);
    return;
  }
#endif
  internal::CsrRowLoop<false>(offs, nbr, begin, end, x, y, PortableBody{});
}

double AdjacencyMatVecRowsFused(const Graph& graph, size_t begin, size_t end,
                                const double* x, double* y) {
  CheckRowRange(graph, begin, end, x, y);
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
#if defined(OCA_HAVE_AVX2)
  if (ActiveCsrKernel() == CsrKernelKind::kAvx2) {
    return internal::Avx2RowsFused(offs, nbr, begin, end, x, y);
  }
#endif
  return internal::CsrRowLoop<true>(offs, nbr, begin, end, x, y,
                                    PortableBody{});
}

size_t MatVecBlockRows(size_t n) {
  // One block below the threshold: a 2048-row mat-vec is microseconds
  // of work, not worth partition bookkeeping. Above it, target ~64
  // blocks (ample parallel load balance at any realistic worker count)
  // rounded to a 512-row multiple, clamped so a block's y-range plus
  // row metadata stays comfortably cache-resident.
  constexpr size_t kMinBlock = 2048;
  constexpr size_t kMaxBlock = 65536;
  constexpr size_t kTargetBlocks = 64;
  if (n <= kMinBlock) return kMinBlock;
  size_t block = (n + kTargetBlocks - 1) / kTargetBlocks;
  block = ((block + 511) / 512) * 512;
  return std::clamp(block, kMinBlock, kMaxBlock);
}

}  // namespace oca
