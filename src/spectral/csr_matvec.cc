#include "spectral/csr_matvec.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "spectral/csr_matvec_rows.h"

namespace oca {

namespace {

/// Portable body: four independent accumulator chains over the striped
/// lanes. The chains break the serial add-latency dependency the old
/// single-accumulator loop was bound by (~4 cycles per edge on current
/// cores) and give the compiler a layout it can auto-vectorize; the
/// combine order matches the AVX2 kernel's horizontal sum exactly.
struct PortableBody {
  double operator()(const NodeId* nbr, uint64_t b, uint64_t body_end,
                    const double* x) const {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 += x[nbr[p]];
      a1 += x[nbr[p + 1]];
      a2 += x[nbr[p + 2]];
      a3 += x[nbr[p + 3]];
    }
    return (a0 + a2) + (a1 + a3);
  }
};

/// Weighted portable body: the same four chains with each element
/// scaled by its edge weight. Separate multiply then add per lane —
/// -ffp-contract=off keeps it from fusing, preserving bit-identity
/// with the AVX2 weighted kernel's mul_pd/add_pd sequence.
struct PortableWeightedBody {
  double operator()(const NodeId* nbr, const double* w, uint64_t b,
                    uint64_t body_end, const double* x) const {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (uint64_t p = b; p < body_end; p += 4) {
      a0 += w[p] * x[nbr[p]];
      a1 += w[p + 1] * x[nbr[p + 1]];
      a2 += w[p + 2] * x[nbr[p + 2]];
      a3 += w[p + 3] * x[nbr[p + 3]];
    }
    return (a0 + a2) + (a1 + a3);
  }
};

bool CpuHasAvx2() {
#if defined(OCA_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Dispatch state: kUnresolved until first use, then either kAuto (the
/// per-graph heuristic) or a forced CsrKernelKind value (>= 0). Relaxed
/// atomics: every transition is to a state that produces bit-identical
/// results, so a racing reader at worst runs one block on the previous
/// kernel.
constexpr int kKernelUnresolved = -2;
constexpr int kKernelAuto = -1;

int ResolveKernelFromEnv() {
  if (const char* env = std::getenv("OCA_SIMD"); env != nullptr) {
    if (std::strcmp(env, "avx2") == 0) {
      return static_cast<int>(CpuHasAvx2() ? CsrKernelKind::kAvx2
                                           : CsrKernelKind::kPortable);
    }
    if (std::strcmp(env, "portable") == 0 || std::strcmp(env, "off") == 0) {
      return static_cast<int>(CsrKernelKind::kPortable);
    }
    // "auto" (or anything unrecognized) falls through to the heuristic.
  }
  // Auto dispatches per graph on mean row length (CsrKernelFor):
  // measured on the community-graph row profile (mean degree ~20, x
  // L1-resident), four independent scalar load chains sustain
  // ~2 loads/cycle while vgatherdpd manages ~1 — 14.5us vs 18.4us on
  // the 2000-node LFR mat-vec bench — so short rows stay portable and
  // only wide rows (>= kAvx2MeanRowThreshold) take the AVX2 path.
  // Results are bit-identical either way, so the choice never affects
  // digests; OCA_SIMD / SetCsrKernel stay authoritative when set.
  return kKernelAuto;
}

std::atomic<int> g_kernel_state{kKernelUnresolved};

int KernelState() {
  int state = g_kernel_state.load(std::memory_order_relaxed);
  if (state == kKernelUnresolved) {
    state = ResolveKernelFromEnv();
    g_kernel_state.store(state, std::memory_order_relaxed);
  }
  return state;
}

void CheckRowRange(const Graph& graph, size_t begin, size_t end,
                   const double* x, const double* y) {
  if (begin > end || end > graph.num_nodes()) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: row range out of bounds");
  }
  if (begin == end) return;  // empty range needs no buffers
  if (x == nullptr || y == nullptr) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: null vector argument");
  }
  if (x == y) {
    internal::KernelContractViolation(
        "AdjacencyMatVecRows: x and y must not alias (y[u] is written "
        "while x entries are still being read)");
  }
}

void CheckMultiArgs(const Graph& graph, size_t begin, size_t end,
                    const double* x, const double* y, size_t k) {
  if (k < 1 || k > kMaxMatVecBatch) {
    internal::KernelContractViolation(
        "AdjacencyMatVecMultiRows: batch width k outside "
        "[1, kMaxMatVecBatch]");
  }
  CheckRowRange(graph, begin, end, x, y);
}

}  // namespace

namespace internal {

void KernelContractViolation(const char* what) {
  std::fprintf(stderr, "[FATAL] CSR mat-vec contract violation: %s\n", what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* CsrKernelName(CsrKernelKind kind) {
  switch (kind) {
    case CsrKernelKind::kAvx2:
      return "avx2";
    case CsrKernelKind::kPortable:
      break;
  }
  return "portable";
}

bool CsrKernelAvailable(CsrKernelKind kind) {
  return kind == CsrKernelKind::kPortable || CpuHasAvx2();
}

CsrKernelKind ActiveCsrKernel() {
  const int state = KernelState();
  // In auto mode, report the heuristic's short-row answer: the
  // library's default workloads (community graphs) sit well below the
  // AVX2 threshold.
  return state >= 0 ? static_cast<CsrKernelKind>(state)
                    : CsrKernelKind::kPortable;
}

bool CsrKernelIsAuto() { return KernelState() == kKernelAuto; }

CsrKernelKind SetCsrKernel(CsrKernelKind kind) {
  if (!CsrKernelAvailable(kind)) kind = CsrKernelKind::kPortable;
  g_kernel_state.store(static_cast<int>(kind), std::memory_order_relaxed);
  return kind;
}

void SetCsrKernelAuto() {
  g_kernel_state.store(kKernelAuto, std::memory_order_relaxed);
}

CsrKernelKind CsrKernelForMeanDegree(double mean_row) {
  if (mean_row >= kAvx2MeanRowThreshold && CpuHasAvx2()) {
    return CsrKernelKind::kAvx2;
  }
  return CsrKernelKind::kPortable;
}

CsrKernelKind CsrKernelFor(const Graph& graph) {
  const int state = KernelState();
  if (state >= 0) return static_cast<CsrKernelKind>(state);
  const size_t n = graph.num_nodes();
  if (n == 0) return CsrKernelKind::kPortable;
  return CsrKernelForMeanDegree(
      static_cast<double>(graph.neighbor_array().size()) /
      static_cast<double>(n));
}

void AdjacencyMatVecRows(const Graph& graph, size_t begin, size_t end,
                         const double* x, double* y) {
  CheckRowRange(graph, begin, end, x, y);
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
  if (graph.is_weighted()) {
    const double* w = graph.weight_array().data();
#if defined(OCA_HAVE_AVX2)
    if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
      internal::Avx2WeightedRows(offs, nbr, w, begin, end, x, y);
      return;
    }
#endif
    internal::CsrRowLoopW<false>(offs, nbr, w, begin, end, x, y,
                                 PortableWeightedBody{});
    return;
  }
#if defined(OCA_HAVE_AVX2)
  if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
    internal::Avx2Rows(offs, nbr, begin, end, x, y);
    return;
  }
#endif
  internal::CsrRowLoop<false>(offs, nbr, begin, end, x, y, PortableBody{});
}

double AdjacencyMatVecRowsFused(const Graph& graph, size_t begin, size_t end,
                                const double* x, double* y) {
  CheckRowRange(graph, begin, end, x, y);
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
  if (graph.is_weighted()) {
    const double* w = graph.weight_array().data();
#if defined(OCA_HAVE_AVX2)
    if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
      return internal::Avx2WeightedRowsFused(offs, nbr, w, begin, end, x, y);
    }
#endif
    return internal::CsrRowLoopW<true>(offs, nbr, w, begin, end, x, y,
                                       PortableWeightedBody{});
  }
#if defined(OCA_HAVE_AVX2)
  if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
    return internal::Avx2RowsFused(offs, nbr, begin, end, x, y);
  }
#endif
  return internal::CsrRowLoop<true>(offs, nbr, begin, end, x, y,
                                    PortableBody{});
}

void AdjacencyMatVecMultiRows(const Graph& graph, size_t begin, size_t end,
                              const double* x, double* y, size_t k) {
  CheckMultiArgs(graph, begin, end, x, y, k);
  if (k == 1) {  // identical layout; the single kernel is the fast path
    AdjacencyMatVecRows(graph, begin, end, x, y);
    return;
  }
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
  if (graph.is_weighted()) {
    const double* w = graph.weight_array().data();
#if defined(OCA_HAVE_AVX2)
    if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
      internal::Avx2WeightedMultiRows(offs, nbr, w, begin, end, x, y, k);
      return;
    }
#endif
    internal::PortableWeightedMultiRows<false>(offs, nbr, w, begin, end, x, y,
                                               k, nullptr);
    return;
  }
#if defined(OCA_HAVE_AVX2)
  if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
    internal::Avx2MultiRows(offs, nbr, begin, end, x, y, k);
    return;
  }
#endif
  internal::PortableMultiRows<false>(offs, nbr, begin, end, x, y, k, nullptr);
}

void AdjacencyMatVecMultiRowsFused(const Graph& graph, size_t begin,
                                   size_t end, const double* x, double* y,
                                   size_t k, double* alpha) {
  CheckMultiArgs(graph, begin, end, x, y, k);
  if (alpha == nullptr) {
    internal::KernelContractViolation(
        "AdjacencyMatVecMultiRowsFused: null alpha argument");
  }
  for (size_t j = 0; j < k; ++j) alpha[j] = 0.0;
  if (k == 1) {
    alpha[0] = AdjacencyMatVecRowsFused(graph, begin, end, x, y);
    return;
  }
  const uint64_t* offs = graph.offsets().data();
  const NodeId* nbr = graph.neighbor_array().data();
  if (graph.is_weighted()) {
    const double* w = graph.weight_array().data();
#if defined(OCA_HAVE_AVX2)
    if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
      internal::Avx2WeightedMultiRowsFused(offs, nbr, w, begin, end, x, y, k,
                                           alpha);
      return;
    }
#endif
    internal::PortableWeightedMultiRows<true>(offs, nbr, w, begin, end, x, y,
                                              k, alpha);
    return;
  }
#if defined(OCA_HAVE_AVX2)
  if (CsrKernelFor(graph) == CsrKernelKind::kAvx2) {
    internal::Avx2MultiRowsFused(offs, nbr, begin, end, x, y, k, alpha);
    return;
  }
#endif
  internal::PortableMultiRows<true>(offs, nbr, begin, end, x, y, k, alpha);
}

size_t MatVecBlockRows(size_t n) {
  // One block below the threshold: a 2048-row mat-vec is microseconds
  // of work, not worth partition bookkeeping. Above it, target ~64
  // blocks (ample parallel load balance at any realistic worker count)
  // rounded to a 512-row multiple, clamped so a block's y-range plus
  // row metadata stays comfortably cache-resident.
  constexpr size_t kMinBlock = 2048;
  constexpr size_t kMaxBlock = 65536;
  constexpr size_t kTargetBlocks = 64;
  if (n <= kMinBlock) return kMinBlock;
  size_t block = (n + kTargetBlocks - 1) / kTargetBlocks;
  block = ((block + 511) / 512) * 512;
  return std::clamp(block, kMinBlock, kMaxBlock);
}

}  // namespace oca
