// The one CSR adjacency row kernel behind every spectral mat-vec.
//
// Every adjacency product in the library — the free AdjacencyMatVec
// wrappers, SpectralEngine::MatVec, and the engine's fused
// mat-vec+Rayleigh Lanczos step — runs through the two row-range
// entry points below. There is deliberately no second copy of the row
// loop anywhere: the plain and fused variants share one implementation
// (the fused variant additionally accumulates sum_u y[u]*x[u] over its
// row range), so the products cannot drift apart.
//
// SIMD: the kernel is vectorized with a fixed four-accumulator layout.
// Each row's neighbor sum is computed as four striped partial sums over
// the vectorizable body (lane j accumulates x[nbr[base + 4t + j]]),
// combined as (a0 + a2) + (a1 + a3), followed by a sequential scalar
// tail. Both implementations — the portable C++ one (four independent
// dependency chains the compiler can keep in registers or auto-
// vectorize) and the AVX2 gather one (built when OCA_ENABLE_AVX2 is on
// and the compiler supports -mavx2, selected at runtime only on CPUs
// that report AVX2) — follow exactly this operation order, so their
// results are BIT-IDENTICAL. That is what lets the deterministic-
// parallel contract (RecursiveHierarchy::Digest() invariance across
// thread counts) extend across kernel variants: switching kernels
// never changes a single bit of any spectral result.
//
// Dispatch: resolved once per process from the OCA_SIMD environment
// variable ("portable" forces the fallback, "avx2" requests the wide
// kernel, anything else auto-detects) and the CPU's capabilities;
// SetCsrKernel overrides it (tests, benchmarks).
//
// Contract (checked, violations abort): x and y hold
// graph.num_nodes() entries, do not alias, and begin <= end <= n.
// Aliasing x == y cannot work even in principle — y[u] is written
// while x[v] for v > u is still being read.

#ifndef OCA_SPECTRAL_CSR_MATVEC_H_
#define OCA_SPECTRAL_CSR_MATVEC_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace oca {

/// The available CSR row-kernel implementations. All of them produce
/// bit-identical results; they differ only in speed.
enum class CsrKernelKind {
  kPortable = 0,  // unrolled four-accumulator C++, always available
  kAvx2 = 1,      // AVX2 gather; needs build flag + CPU support
};

/// Human-readable kernel name ("portable", "avx2") for logs/benches.
const char* CsrKernelName(CsrKernelKind kind);

/// True when `kind` was compiled in AND the running CPU supports it.
bool CsrKernelAvailable(CsrKernelKind kind);

/// The kernel the next mat-vec will use. First call resolves the
/// OCA_SIMD environment variable ("portable" | "avx2" | "auto"/unset)
/// against CsrKernelAvailable; an unavailable request falls back to
/// portable. Auto resolves to the portable kernel — on the library's
/// row profile (short rows, L1-resident x) the four scalar load chains
/// beat AVX2 gathers; see the note in csr_matvec.cc.
CsrKernelKind ActiveCsrKernel();

/// Overrides the active kernel (falls back to portable when `kind` is
/// unavailable) and returns what is actually active now. Not
/// synchronized with in-flight mat-vecs — switch between solves only
/// (tests and benchmarks do).
CsrKernelKind SetCsrKernel(CsrKernelKind kind);

/// y[u] = sum_{v in N(u)} x[v] for u in [begin, end): one block of
/// rows of the adjacency mat-vec. See the contract above.
void AdjacencyMatVecRows(const Graph& graph, size_t begin, size_t end,
                         const double* x, double* y);

/// AdjacencyMatVecRows plus the block's Rayleigh partial: returns
/// sum_{u in [begin, end)} y[u] * x[u], accumulated in row order. The
/// fused pass is what the engine's Lanczos step runs — one CSR
/// traversal yields both the product and the alpha coefficient.
double AdjacencyMatVecRowsFused(const Graph& graph, size_t begin, size_t end,
                                const double* x, double* y);

/// Deterministic row-block width for an n-node mat-vec: a pure
/// function of n alone (never of thread count or kernel), so the block
/// partition — and with it the fixed-block alpha reduction order — is
/// identical across serial, pooled, and SIMD execution. Small graphs
/// get one block (no partition overhead); large graphs get enough
/// blocks for parallel load balance, each sized to keep its y-range
/// and row metadata cache-resident.
size_t MatVecBlockRows(size_t n);

namespace internal {

/// Aborts with a diagnostic. Kernel preconditions are enforced in
/// every build type: the checks are O(1) against O(degree) work, and a
/// silently aliased mat-vec produces garbage eigenvalues that are far
/// more expensive to debug than an abort at the call site.
[[noreturn]] void KernelContractViolation(const char* what);

}  // namespace internal

}  // namespace oca

#endif  // OCA_SPECTRAL_CSR_MATVEC_H_
