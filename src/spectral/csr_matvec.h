// The one CSR adjacency row kernel behind every spectral mat-vec.
//
// Every adjacency product in the library — the free AdjacencyMatVec
// wrappers, SpectralEngine::MatVec, and the engine's fused
// mat-vec+Rayleigh Lanczos step — runs through the two row-range
// entry points below. There is deliberately no second copy of the row
// loop anywhere: the plain and fused variants share one implementation
// (the fused variant additionally accumulates sum_u y[u]*x[u] over its
// row range), so the products cannot drift apart.
//
// SIMD: the kernel is vectorized with a fixed four-accumulator layout.
// Each row's neighbor sum is computed as four striped partial sums over
// the vectorizable body (lane j accumulates x[nbr[base + 4t + j]]),
// combined as (a0 + a2) + (a1 + a3), followed by a sequential scalar
// tail. Both implementations — the portable C++ one (four independent
// dependency chains the compiler can keep in registers or auto-
// vectorize) and the AVX2 gather one (built when OCA_ENABLE_AVX2 is on
// and the compiler supports -mavx2, selected at runtime only on CPUs
// that report AVX2) — follow exactly this operation order, so their
// results are BIT-IDENTICAL. That is what lets the deterministic-
// parallel contract (RecursiveHierarchy::Digest() invariance across
// thread counts) extend across kernel variants: switching kernels
// never changes a single bit of any spectral result.
//
// Multi-vector (SpMM): the AdjacencyMatVecMulti* entry points compute
// k products in ONE sweep over offsets/neighbors. Vectors are
// interleaved node-major (column j of node v at x[v * k + j]) so each
// edge visit is one contiguous k-wide strip; on AVX2 that strip is a
// plain vector load — the gather disappears entirely. Column j of the
// multi kernel is bit-identical to a single-vector call on that
// column, for every k and every kernel (the striped accumulation and
// combine order are kept per column — see csr_matvec_rows.h), so the
// digest pins extend across batch widths by construction.
//
// Dispatch: resolved once per process from the OCA_SIMD environment
// variable ("portable"/"avx2" force a kernel; "auto" or unset enables
// the per-graph heuristic) and the CPU's capabilities; SetCsrKernel /
// SetCsrKernelAuto override it (tests, benchmarks). In auto mode the
// kernel is chosen from the graph's mean row length — a constant of
// the graph, so the choice is made once per graph in effect: short
// community-graph rows run the portable chains (measured faster than
// gathers in PR 6), wide rows run AVX2. Either way results are
// bit-identical, so the heuristic can never affect a digest.
//
// Contract (checked, violations abort): x and y hold
// graph.num_nodes() entries (times k for the multi variants, with
// 1 <= k <= kMaxMatVecBatch), do not alias, and begin <= end <= n.
// Aliasing x == y cannot work even in principle — y[u] is written
// while x[v] for v > u is still being read.

#ifndef OCA_SPECTRAL_CSR_MATVEC_H_
#define OCA_SPECTRAL_CSR_MATVEC_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace oca {

/// Widest batch the multi-vector (SpMM) entry points accept. Callers
/// with more right-hand sides chunk them kMaxMatVecBatch at a time; the
/// engine's block-Lanczos width is clamped to this.
inline constexpr size_t kMaxMatVecBatch = 8;

/// The available CSR row-kernel implementations. All of them produce
/// bit-identical results; they differ only in speed.
enum class CsrKernelKind {
  kPortable = 0,  // unrolled four-accumulator C++, always available
  kAvx2 = 1,      // AVX2 gather; needs build flag + CPU support
};

/// Human-readable kernel name ("portable", "avx2") for logs/benches.
const char* CsrKernelName(CsrKernelKind kind);

/// True when `kind` was compiled in AND the running CPU supports it.
bool CsrKernelAvailable(CsrKernelKind kind);

/// The kernel a mat-vec on a typical (short-row) graph will use. First
/// call resolves the OCA_SIMD environment variable
/// ("portable" | "avx2" | "auto"/unset) against CsrKernelAvailable; an
/// unavailable request falls back to portable. In auto mode this
/// reports the heuristic's short-row answer (portable); per-graph
/// resolution is CsrKernelFor.
CsrKernelKind ActiveCsrKernel();

/// True when no kernel is forced (no OCA_SIMD override, no
/// SetCsrKernel) and dispatch runs the per-graph mean-row-length
/// heuristic.
bool CsrKernelIsAuto();

/// Forces the active kernel (falls back to portable when `kind` is
/// unavailable), disabling the auto heuristic, and returns what is
/// actually active now. Not synchronized with in-flight mat-vecs —
/// switch between solves only (tests and benchmarks do).
CsrKernelKind SetCsrKernel(CsrKernelKind kind);

/// Re-enables heuristic dispatch (the unforced default), overriding
/// any prior SetCsrKernel or OCA_SIMD resolution.
void SetCsrKernelAuto();

/// Mean row length at or above which the auto heuristic picks the AVX2
/// kernel (when available). PR 6 measured the portable chains winning
/// at mean degree ~20; gathers need substantially longer rows before
/// their wider loads amortize, hence the conservative threshold.
inline constexpr double kAvx2MeanRowThreshold = 32.0;

/// The heuristic's choice for a graph with the given mean row length:
/// kAvx2 iff mean_row >= kAvx2MeanRowThreshold and AVX2 is available.
/// Pure — exposed so the policy is unit-testable.
CsrKernelKind CsrKernelForMeanDegree(double mean_row);

/// The kernel a mat-vec over `graph` dispatches to right now: the
/// forced kernel if one is active, otherwise the heuristic applied to
/// the graph's mean row length (edges/nodes — O(1) from the CSR
/// spans, constant per graph).
CsrKernelKind CsrKernelFor(const Graph& graph);

/// y[u] = sum_{v in N(u)} x[v] for u in [begin, end): one block of
/// rows of the adjacency mat-vec. See the contract above.
void AdjacencyMatVecRows(const Graph& graph, size_t begin, size_t end,
                         const double* x, double* y);

/// AdjacencyMatVecRows plus the block's Rayleigh partial: returns
/// sum_{u in [begin, end)} y[u] * x[u], accumulated in row order. The
/// fused pass is what the engine's Lanczos step runs — one CSR
/// traversal yields both the product and the alpha coefficient.
double AdjacencyMatVecRowsFused(const Graph& graph, size_t begin, size_t end,
                                const double* x, double* y);

/// Multi-vector (SpMM) rows: y_j[u] = sum_{v in N(u)} x_j[v] for all k
/// interleaved columns j in one CSR sweep. x and y hold n * k entries
/// in node-major layout (column j of node v at x[v * k + j]);
/// 1 <= k <= kMaxMatVecBatch. Column j is bit-identical to a
/// single-vector AdjacencyMatVecRows call on that column.
void AdjacencyMatVecMultiRows(const Graph& graph, size_t begin, size_t end,
                              const double* x, double* y, size_t k);

/// AdjacencyMatVecMultiRows plus the per-column Rayleigh partials:
/// alpha[j] = sum_{u in [begin, end)} y_j[u] * x_j[u], accumulated in
/// row order — bitwise the partial AdjacencyMatVecRowsFused returns
/// for column j. alpha holds k entries and is overwritten.
void AdjacencyMatVecMultiRowsFused(const Graph& graph, size_t begin,
                                   size_t end, const double* x, double* y,
                                   size_t k, double* alpha);

/// Deterministic row-block width for an n-node mat-vec: a pure
/// function of n alone (never of thread count or kernel), so the block
/// partition — and with it the fixed-block alpha reduction order — is
/// identical across serial, pooled, and SIMD execution. Small graphs
/// get one block (no partition overhead); large graphs get enough
/// blocks for parallel load balance, each sized to keep its y-range
/// and row metadata cache-resident.
size_t MatVecBlockRows(size_t n);

namespace internal {

/// Aborts with a diagnostic. Kernel preconditions are enforced in
/// every build type: the checks are O(1) against O(degree) work, and a
/// silently aliased mat-vec produces garbage eigenvalues that are far
/// more expensive to debug than an abort at the call site.
[[noreturn]] void KernelContractViolation(const char* what);

}  // namespace internal

}  // namespace oca

#endif  // OCA_SPECTRAL_CSR_MATVEC_H_
