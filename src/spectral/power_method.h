// Spectral iteration primitives on the adjacency matrix of a Graph, and
// the options/result types shared by every spectral entry point.
//
// The adjacency matrix is never materialized: the mat-vec y = A x walks
// CSR neighbor lists, so one iteration costs O(n + m).
//
// DominantEigenpair is an API-compatible thin wrapper over
// spectral/spectral_engine.h, which replaced the original shifted power
// iteration with a Krylov (Lanczos) solver: same contract, far fewer
// mat-vecs near a small spectral gap.

#ifndef OCA_SPECTRAL_POWER_METHOD_H_
#define OCA_SPECTRAL_POWER_METHOD_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "spectral/csr_matvec.h"
#include "util/result.h"

namespace oca {

/// Largest coupling constant the pipeline accepts. The admissible range
/// is 0 < c <= -1/lambda_min, and lambda_min <= -1 for any graph with an
/// edge, so c < 1 always holds EXCEPT at the boundary: a triangle (or
/// any graph whose adjacency lambda_min is exactly -1) yields
/// -1/lambda_min = 1.0. The fitness treats c = 1 as degenerate, so every
/// path that produces or accepts a coupling constant — supplied options,
/// the engine's spectral resolution, and hierarchy resolution sweeps —
/// clamps/validates against this one bound instead of hand-rolling its
/// own epsilon.
inline constexpr double kMaxCouplingConstant = 1.0 - 1e-9;

/// Clamps a coupling value to the shared admissible bound. Use wherever
/// a computed c could touch 1.0 (e.g. lambda_min == -1 exactly); the
/// clamped value is what must be recorded/reported, so the clamp is
/// explicit in results rather than hidden in a solver.
inline double ClampCouplingToAdmissible(double c) {
  return std::min(c, kMaxCouplingConstant);
}

/// Convergence controls for spectral iterations.
struct PowerMethodOptions {
  /// Iteration (mat-vec) cap. The coupling constant c = -1/lambda_min
  /// only needs a few significant digits, so the default favors speed;
  /// raise it (and lower `tolerance`) for spectral analyses that need
  /// tight eigenpairs.
  size_t max_iterations = 300;
  /// Eigenpair tolerance: stop when the eigenvalue estimate is stable at
  /// this relative level (the Ritz residual is additionally bounded by
  /// sqrt(tolerance) so the returned eigenvector is consistent).
  double tolerance = 1e-7;
  /// Target relative error of the coupling constant for
  /// ComputeCouplingConstant and the engine's coupling path. c feeds the
  /// fitness as a multiplicative weight, so ~4-5 significant digits
  /// (default) are plenty; this is deliberately much looser than
  /// `tolerance`, which is what made the seed's fixed-tolerance loop the
  /// pipeline's hottest path.
  double coupling_tolerance = 2e-5;
  uint64_t seed = 0x5EED5EEDull;  // random start vector
  /// Lanczos block width. 1 (default) is the scalar recurrence
  /// verbatim. Widths 2..kMaxMatVecBatch advance block_size - 1
  /// auxiliary probe recurrences in LOCKSTEP with the primary one,
  /// fusing all of them through one multi-vector CSR pass per step —
  /// the adjacency stream (the whole cost at mmap scale) is read once
  /// instead of block_size times. The primary recurrence's arithmetic
  /// is bit-identical at every width (the probes never feed back into
  /// it), so reported results and tree digests are invariant in
  /// block_size; the probes buy independent lambda_min confirmations on
  /// clustered spectra, reported via SpectralEngine::last_block_probes.
  size_t block_size = 1;
};

/// Outcome of an eigenpair solve.
struct EigenEstimate {
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;  // unit 2-norm
  size_t iterations = 0;
  bool converged = false;
};

// The row-range kernels (AdjacencyMatVecRows and its fused variant)
// live in spectral/csr_matvec.h, re-exported via the include above;
// the wrappers below add the vector-level conveniences.
//
// Contract shared by every entry point here (checked in all build
// types; violations abort with a diagnostic, see
// internal::KernelContractViolation):
//   * x must hold exactly graph.num_nodes() entries.
//   * y must not alias x (`y != &x`): y[u] is written while x entries
//     are still being read, so an aliased call cannot produce A x even
//     in principle.
//   * y is resized to graph.num_nodes(); previous contents are
//     overwritten.

/// y = A x for the graph's adjacency matrix (y is resized to n).
void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y);

/// y = (A - shift*I) x. Same contract as AdjacencyMatVec.
void ShiftedAdjacencyMatVec(const Graph& graph, double shift,
                            const std::vector<double>& x,
                            std::vector<double>* y);

/// Y = A X for k interleaved right-hand sides in ONE CSR sweep
/// (x.size() == n * k, node-major: column j of node v at x[v*k + j]).
/// y is resized to n * k. Column j is bit-identical to AdjacencyMatVec
/// on that column; see the multi-vector contract in csr_matvec.h.
void AdjacencyMatVecMulti(const Graph& graph, const std::vector<double>& x,
                          std::vector<double>* y, size_t k);

/// Rayleigh quotient x'Ax / x'x for the adjacency matrix, computed in
/// one fused CSR pass into `workspace` (resized to n, contents
/// overwritten — same contract as AdjacencyMatVec's y). The workspace
/// overload is the allocation-free form for call sites that evaluate
/// quotients in a loop: after the first call the buffer is reused,
/// never reallocated.
double RayleighQuotient(const Graph& graph, const std::vector<double>& x,
                        std::vector<double>* workspace);

/// Convenience overload that allocates a fresh workspace per call.
double RayleighQuotient(const Graph& graph, const std::vector<double>& x);

/// Dominant (largest algebraic, = spectral radius) eigenpair of A.
/// Errors on an empty or edgeless graph.
Result<EigenEstimate> DominantEigenpair(const Graph& graph,
                                        const PowerMethodOptions& options = {});

}  // namespace oca

#endif  // OCA_SPECTRAL_POWER_METHOD_H_
