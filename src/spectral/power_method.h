// Power iteration on the adjacency matrix of a Graph.
//
// The adjacency matrix is never materialized: the mat-vec y = A x walks
// CSR neighbor lists, so one iteration costs O(n + m).

#ifndef OCA_SPECTRAL_POWER_METHOD_H_
#define OCA_SPECTRAL_POWER_METHOD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

/// Convergence controls for power iterations.
struct PowerMethodOptions {
  /// Iteration cap. The coupling constant c = -1/lambda_min only needs a
  /// few significant digits, so the default favors speed; raise it (and
  /// lower `tolerance`) for spectral analyses that need tight eigenpairs.
  size_t max_iterations = 300;
  /// Stop when successive Rayleigh-quotient estimates differ by less than
  /// this (relative to magnitude).
  double tolerance = 1e-7;
  uint64_t seed = 0x5EED5EEDull;  // random start vector
};

/// Outcome of a power iteration.
struct EigenEstimate {
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;  // unit 2-norm
  size_t iterations = 0;
  bool converged = false;
};

/// y = A x for the graph's adjacency matrix (y must have size n).
void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y);

/// y = (A - shift*I) x.
void ShiftedAdjacencyMatVec(const Graph& graph, double shift,
                            const std::vector<double>& x,
                            std::vector<double>* y);

/// Rayleigh quotient x'Ax / x'x for the adjacency matrix.
double RayleighQuotient(const Graph& graph, const std::vector<double>& x);

/// Dominant eigenpair of A (largest |lambda|; for adjacency matrices this
/// is the spectral radius lambda_max >= |lambda_min|). Errors on an empty
/// or edgeless graph.
Result<EigenEstimate> DominantEigenpair(const Graph& graph,
                                        const PowerMethodOptions& options = {});

}  // namespace oca

#endif  // OCA_SPECTRAL_POWER_METHOD_H_
