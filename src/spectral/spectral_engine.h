// SpectralEngine: the shared, workspace-reusing eigensolver behind every
// spectral quantity in the OCA pipeline (lambda_max, lambda_min, and the
// coupling constant c = -1/lambda_min).
//
// Why an engine instead of free functions: the paper's pipeline resolves
// spectral extremes repeatedly (once per OCA run, once per hierarchy
// level, once per subgraph a caller explores), and the seed
// implementation paid for a cold random start, a fixed 1e-7 eigenpair
// tolerance, and two full power-method phases every time. The engine
// amortizes all three:
//
//   * Workspaces (iteration vectors, reduction partials, recurrence
//     coefficients) are owned by the engine and reused across calls —
//     zero per-call allocation after warm-up.
//   * Results are cached per graph, so a hierarchy build or a repeated
//     pipeline run pays for the spectral solve once; `SetWarmStart`
//     seeds the next cold solve from a prior eigenvector (e.g. the
//     parent hierarchy level's) instead of a random vector.
//   * Convergence is adaptive: the solver targets relative error in the
//     *value* the caller asked for (c only needs a few significant
//     digits — see PowerMethodOptions) instead of iterating a fixed
//     eigenpair tolerance to exhaustion.
//
// Algorithm: a shift-free Lanczos (Krylov) recurrence on the adjacency
// matrix. One fused CSR pass per step produces both the mat-vec and the
// Rayleigh coefficient; extreme Ritz values are tracked by Sturm-count
// bisection inside Gershgorin degree bounds (the cheap spectral-radius
// bound max-degree brackets every eigenvalue before any iteration), and
// the Ritz sequence — the optimal Rayleigh quotients over the growing
// Krylov space — is accelerated with Aitken-Delta^2 (Wynn-epsilon, first
// column) extrapolation, which both sharpens the reported value and
// supplies the stopping rule's error estimate. This reaches the spectral
// edge orders of magnitude faster than shifted power iteration when the
// edge gap is small (the common case on community graphs), which is what
// makes the adaptive "few significant digits of c" stop safe: the
// extrapolated value is typically *closer* to the true eigenvalue than
// the seed path's fixed-tolerance answer.
//
// The mat-vec is parallelized over util/thread_pool above a size
// threshold, with fixed-block reductions so results are bit-identical
// across thread counts.
//
// Thread-safety: an engine instance is NOT thread-safe; use one per
// thread or guard externally. Cached entries are keyed by Graph address
// (plus node/edge counts as a guard); callers must not destroy a graph
// and reuse its address while relying on the cache — `Forget`/
// `ClearCache` drop entries explicitly.

#ifndef OCA_SPECTRAL_SPECTRAL_ENGINE_H_
#define OCA_SPECTRAL_SPECTRAL_ENGINE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "spectral/extreme_eigen.h"
#include "spectral/power_method.h"
#include "util/result.h"

namespace oca {

class ThreadPool;

/// Engine-wide configuration. The two tolerances are targets on the
/// *relative error of the reported value*, not on eigenpair residuals.
struct SpectralEngineOptions {
  /// Target relative error of the coupling constant c (equivalently of
  /// lambda_min). The paper's pipeline only consumes a few significant
  /// digits of c, so the default asks for ~4-5. Must stay in sync with
  /// PowerMethodOptions::coupling_tolerance so a held engine and the
  /// free-function wrappers resolve the same c by default.
  double coupling_tolerance = 2e-5;
  /// Target relative error for Extremes() eigenvalues.
  double value_tolerance = 1e-7;
  /// Hard cap on Lanczos steps (mat-vecs) per solve.
  size_t max_steps = 6000;
  /// Seed for start vectors and breakdown restarts.
  uint64_t seed = 0x5EED5EEDull;
  /// Mat-vec worker threads (1 = serial, 0 = hardware concurrency).
  size_t num_threads = 1;
  /// Directed-edge count (2m) below which the mat-vec stays serial even
  /// when num_threads > 1.
  size_t parallel_min_edges = 1u << 16;
  /// Lanczos block width (clamped to [1, kMaxMatVecBatch]). Width 1 is
  /// the scalar recurrence verbatim; wider blocks advance
  /// block_size - 1 auxiliary probe recurrences in lockstep with the
  /// primary one through ONE multi-vector CSR pass per step, so the
  /// adjacency stream is read once per step instead of once per
  /// recurrence. The probes never feed back into the primary
  /// recurrence: reported values, vectors, iteration counts — and
  /// therefore every digest — are bit-identical across widths. Probe
  /// Ritz minima are reported via last_block_probes() as independent
  /// lambda_min confirmations on clustered spectra. See
  /// PowerMethodOptions::block_size.
  size_t block_size = 1;
};

/// The one mapping from caller-facing PowerMethodOptions to engine
/// options, shared by every wrapper/call site so the translation cannot
/// drift. `max_steps` is the call site's step-budget policy, stated
/// explicitly: eigenpair entry points honor `pm.max_iterations` as-is,
/// value-only solves typically grant `max(2 * pm.max_iterations, 128)`
/// (the seed ran up to max_iterations per power-method phase).
SpectralEngineOptions EngineOptionsFrom(const PowerMethodOptions& pm,
                                        size_t max_steps);

/// EngineOptionsFrom with the standard value-solve step budget,
/// max(2 * pm.max_iterations, 128) — the one policy shared by every
/// value-only entry point (RunOca, BuildHierarchy, the free wrappers).
SpectralEngineOptions ValueSolveOptionsFrom(const PowerMethodOptions& pm);

/// Outcome of a coupling-constant resolution.
struct CouplingResult {
  double c = 0.0;
  double lambda_min = 0.0;
  size_t iterations = 0;  // Lanczos steps spent (0 on a cache hit)
  bool converged = false;
};

/// Diagnostics from the auxiliary Ritz block of the engine's last
/// pass-1 Lanczos sweep (populated only when
/// SpectralEngineOptions::block_size > 1). Each probe is an
/// independent Lanczos recurrence — own random start, own restart
/// stream — advanced in lockstep with the primary one through the
/// multi-vector kernel, so its minimum Ritz value is an independent
/// confirmation of lambda_min at near-zero marginal memory traffic.
/// Probes are diagnostics ONLY: they never alter reported results.
struct BlockProbeStats {
  bool valid = false;     // true after a block-mode pass-1 sweep
  size_t block_size = 1;  // primary + probes
  size_t steps = 0;       // lockstep steps shared with the primary
  /// Min over the primary's raw Ritz minimum (when the sweep tracked
  /// the min end) and every probe's Ritz minimum.
  double block_lambda_min = 0.0;
  std::vector<double> probe_lambda_min;  // one entry per probe lane
  std::vector<bool> probe_converged;     // probe's own stagnation test
};

class SpectralEngine {
 public:
  explicit SpectralEngine(const SpectralEngineOptions& options = {});
  ~SpectralEngine();

  SpectralEngine(const SpectralEngine&) = delete;
  SpectralEngine& operator=(const SpectralEngine&) = delete;

  /// y = A x for the graph's adjacency matrix; x and y must hold
  /// graph.num_nodes() entries and must not alias. Parallelized over the
  /// engine's pool above the size threshold; results are identical for
  /// every thread count.
  void MatVec(const Graph& graph, const double* x, double* y);

  /// y = A x plus the Rayleigh coefficient x' A x, from ONE fused CSR
  /// pass (spectral/csr_matvec.h's fused row kernel — the same single
  /// kernel MatVec runs, so the two products cannot drift). The
  /// coefficient is reduced over fixed row blocks in block order
  /// (MatVecBlockRows), so it is bit-identical across thread counts and
  /// kernel variants. Same contract as MatVec. This is the engine's
  /// Lanczos step; it is public so kernel-consistency tests and fused
  /// callers (e.g. Rayleigh-quotient loops) can use it directly.
  double MatVecFused(const Graph& graph, const double* x, double* y);

  /// Both spectral extremes at `value_tolerance`. Cached per graph.
  /// Errors on empty/edgeless graphs.
  Result<ExtremeEigenvalues> Extremes(const Graph& graph);

  /// The coupling constant c = -1/lambda_min at `coupling_tolerance`
  /// (single Lanczos sweep for the minimum end only — no lambda_max
  /// phase). Cached per graph. Errors on empty/edgeless graphs.
  Result<CouplingResult> CouplingConstant(const Graph& graph);

  /// CouplingConstant plus the lambda_min Ritz vector of the same sweep,
  /// reconstructed by a replay pass and cached as the graph's
  /// min-eigenvector (retrievable via GetCachedMinEigenvector, usable
  /// through WarmStartFromParent). This is the entry point for
  /// warm-start chains across evolving graphs: each solve both consumes
  /// a pending warm start and produces the eigenvector the next
  /// (sub)graph's solve is seeded from. `eigenvector` may be null when
  /// only the caching side effect is wanted. The eigenvector is resolved
  /// at `coupling_tolerance`, loose by eigenpair standards — good enough
  /// to seed a Krylov space, not for spectral analyses (use MinEigenpair
  /// for those). A cache hit with a stored vector costs nothing; a cache
  /// hit without one replays a fresh sweep for the vector but keeps the
  /// cached coupling values, so repeated calls agree exactly.
  Result<CouplingResult> CouplingConstantWithVector(
      const Graph& graph, std::vector<double>* eigenvector);

  /// Dominant (largest algebraic) eigenpair, honoring the caller's
  /// PowerMethodOptions: `tolerance` bounds the eigenvalue stop and the
  /// Ritz residual, `max_iterations` caps Lanczos steps. The eigenvector
  /// is reconstructed by a second recurrence pass (no basis storage), so
  /// engine memory stays O(n).
  Result<EigenEstimate> Dominant(const Graph& graph,
                                 const PowerMethodOptions& pm);

  /// Smallest-eigenvalue eigenpair, same contract as Dominant. Also
  /// caches the eigenvector as the graph's warm-start vector.
  Result<EigenEstimate> MinEigenpair(const Graph& graph,
                                     const PowerMethodOptions& pm);

  /// Seeds the next cold solve's start vector (copied). Applies once, to
  /// the first subsequent solve whose graph has the same node count (a
  /// cache hit counts as that solve and consumes the vector); ignored
  /// otherwise. Intended for warm-starting a level's eigenvector from
  /// the parent level when a graph evolves between solves.
  void SetWarmStart(std::span<const double> eigenvector);

  /// Cross-graph warm-start restriction: registers (via SetWarmStart)
  /// the renormalized restriction of a parent graph's eigenvector onto a
  /// subgraph's node set. `to_parent[i]` is the parent-side index of the
  /// subgraph's local node i — for a subgraph induced from the parent
  /// graph itself this is exactly `Subgraph::to_original`. Returns false
  /// and registers nothing when the restriction is unusable: empty map,
  /// an index out of range, or a restricted norm too small to carry
  /// spectral information (the parent eigenvector has essentially no
  /// mass on this subgraph, so a random start is the better seed).
  bool WarmStartFromParent(std::span<const double> parent_eigenvector,
                           std::span<const NodeId> to_parent);

  /// Copies the cached min-eigenvector for `graph` into `out` if one is
  /// known (populated by MinEigenpair). Returns false otherwise.
  bool GetCachedMinEigenvector(const Graph& graph,
                               std::vector<double>* out) const;

  /// Drops the cache entry for `graph` (e.g. before its storage is
  /// reused) / the whole cache.
  void Forget(const Graph& graph);
  void ClearCache();

  /// Total Lanczos mat-vec passes performed (cache hits add nothing).
  /// A block-mode pass counts once — it IS one adjacency traversal.
  size_t total_matvecs() const { return total_matvecs_; }
  /// Number of calls answered from the per-graph cache.
  size_t cache_hits() const { return cache_hits_; }

  /// Probe diagnostics of the last pass-1 sweep; valid only when it ran
  /// with block_size > 1 (reset by every new pass-1 sweep).
  const BlockProbeStats& last_block_probes() const { return block_probes_; }

  const SpectralEngineOptions& options() const { return options_; }

 private:
  struct EndTracker;
  struct SweepOutcome;
  struct AuxLane;

  struct CacheEntry {
    const Graph* graph = nullptr;
    size_t nodes = 0;
    size_t edges = 0;
    bool has_extremes = false;
    ExtremeEigenvalues extremes;
    bool has_coupling = false;
    CouplingResult coupling;
    std::vector<double> min_eigenvector;  // empty unless MinEigenpair ran
  };

  CacheEntry* FindEntry(const Graph& graph);
  const CacheEntry* FindEntry(const Graph& graph) const;
  CacheEntry* TouchEntry(const Graph& graph);

  Status ValidateGraph(const Graph& graph) const;
  void EnsureWorkspace(size_t n);
  void PrepareStartVector(const Graph& graph);
  /// A cache hit counts as the warm-start contract's "first subsequent
  /// solve": consumes a size-matching pending vector so it cannot leak
  /// into a later unrelated solve.
  void ConsumeWarmStartOnCacheHit(size_t n);
  size_t ResolvedThreads() const;
  bool UseParallel(const Graph& graph) const;

  /// One fused CSR pass on the solve workspaces: w_ = A v_, returns
  /// alpha = v_' A v_. Thin wrapper over the public MatVecFused.
  double MatVecAlphaStep(const Graph& graph);

  /// Configured Lanczos block width, clamped to [1, kMaxMatVecBatch].
  size_t ResolvedBlockSize() const;
  /// (Re)seeds the block_size - 1 auxiliary probe lanes for a pass-1
  /// block sweep.
  void InitAuxLanes(size_t n);
  /// Block-mode Lanczos step: ONE multi-vector fused pass computes the
  /// primary product (column 0 — bit-identical to MatVecAlphaStep, the
  /// per-column alpha partials reduce in the same fixed block order)
  /// and every live probe lane's product; probe recurrences are then
  /// advanced in place. Returns the primary alpha.
  double MatVecAlphaStepBlock(const Graph& graph, double gersh);
  /// Advances one probe lane given its fused product (column `col` of
  /// block_y_) and Rayleigh coefficient; mirrors the primary
  /// recurrence's breakdown/restart policy on the lane's own stream.
  void AdvanceAuxLane(AuxLane* lane, size_t col, size_t width, size_t n,
                      double a, double gersh);

  /// Runs the Lanczos recurrence until the wanted ends converge (pass 1,
  /// `ritz_weights == nullptr`) or replays exactly `replay_steps` steps
  /// accumulating `eigenvector += ritz_weights[j] * v_j` (pass 2).
  SweepOutcome LanczosSweep(const Graph& graph, bool need_min, bool need_max,
                            double tol_min, double tol_max, size_t step_cap,
                            double residual_target,
                            const std::vector<double>* ritz_weights,
                            size_t replay_steps,
                            std::vector<double>* eigenvector);

  /// Extreme eigenvalue of the current tridiagonal T_k by Sturm bisection
  /// within [lo, hi].
  double BisectExtreme(size_t k, bool smallest, double lo, double hi,
                       double abs_tol) const;
  size_t SturmCountBelow(size_t k, double x) const;

  /// Last component (and optionally the full vector) of the unit
  /// eigenvector of T_k for Ritz value theta, via inverse iteration.
  double TridiagEigenvector(size_t k, double theta,
                            std::vector<double>* s) const;

  Result<EigenEstimate> EigenpairImpl(const Graph& graph,
                                      const PowerMethodOptions& pm,
                                      bool smallest);

  /// Replays the sweep that just ran (pass 2 over the same start vector
  /// and restart stream) to reconstruct the unit Ritz vector for `theta`,
  /// sign-fixed so the largest-magnitude entry is positive.
  std::vector<double> ReconstructRitzVector(const Graph& graph, double theta);

  SpectralEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  // Reusable solve workspaces (grown monotonically, never shrunk).
  std::vector<double> v_;        // current Lanczos vector
  std::vector<double> vprev_;    // previous Lanczos vector
  std::vector<double> w_;        // mat-vec output / next vector
  std::vector<double> start_;    // start vector of the current sweep
  std::vector<double> partial_;  // per-block reduction partials
  std::vector<double> alpha_;    // T diagonal
  std::vector<double> beta_;     // T off-diagonal
  std::vector<double> beta_sq_;  // squared off-diagonal (Sturm)
  mutable std::vector<double> tri_s_;    // tridiagonal eigenvector scratch
  mutable std::vector<double> tri_d_;    // Thomas-solve scratch
  mutable std::vector<double> tri_rhs_;  // Thomas-solve scratch

  // Block-Lanczos state: interleaved pack/product buffers (n * width),
  // per-block per-column alpha partials, a shared lane scratch, and the
  // probe lanes themselves (live only during a block-mode sweep).
  std::vector<double> block_x_;
  std::vector<double> block_y_;
  std::vector<double> block_partial_;
  std::vector<double> aux_w_;
  std::vector<AuxLane> aux_;
  BlockProbeStats block_probes_;
  bool block_active_ = false;

  std::vector<double> warm_;  // pending SetWarmStart vector
  bool warm_pending_ = false;

  std::vector<CacheEntry> cache_;
  size_t total_matvecs_ = 0;
  size_t cache_hits_ = 0;
};

/// A fixed fleet of independently owned engines for worker-parallel
/// callers. An engine is stateful (workspaces, per-graph cache, pending
/// warm start) and not thread-safe, so a task scheduler holds one engine
/// per pool worker and routes every solve of a task through the engine
/// of the worker running it (`ThreadPool::CurrentWorkerIndex`): two
/// tasks that observe the same index are serialized on that worker, so
/// no engine is ever touched concurrently. Cross-engine state handoff
/// happens through values, not shared engines — a parent task publishes
/// its solve's eigenvector, and the child task feeds it to its own
/// worker's engine via `WarmStartFromParent`. All engines share one
/// configuration; per-solve results are identical across engines (start
/// vectors derive from the configured seed, not engine history).
class SpectralEngineSet {
 public:
  SpectralEngineSet(size_t count, const SpectralEngineOptions& options);

  /// The engine owned by worker `worker` (bounds-checked).
  SpectralEngine& at(size_t worker) {
    assert(worker < engines_.size());
    return *engines_[worker];
  }
  size_t size() const { return engines_.size(); }

 private:
  std::vector<std::unique_ptr<SpectralEngine>> engines_;
};

}  // namespace oca

#endif  // OCA_SPECTRAL_SPECTRAL_ENGINE_H_
