// Extreme adjacency eigenvalues and the OCA coupling constant
// c = -1 / lambda_min (paper Section II).
//
// Both functions are thin wrappers over spectral/spectral_engine.h: a
// single Lanczos sweep resolves lambda_max and lambda_min together
// (no shifted second phase), and ComputeCouplingConstant runs a
// minimum-end-only sweep with the adaptive stop targeting relative error
// in c itself (PowerMethodOptions::coupling_tolerance). Callers that
// resolve spectra repeatedly should hold a SpectralEngine instead to get
// workspace reuse, per-graph caching, and warm starts.

#ifndef OCA_SPECTRAL_EXTREME_EIGEN_H_
#define OCA_SPECTRAL_EXTREME_EIGEN_H_

#include "spectral/power_method.h"

namespace oca {

/// Both spectral extremes of the adjacency matrix.
struct ExtremeEigenvalues {
  double lambda_max = 0.0;
  double lambda_min = 0.0;
  size_t iterations_max = 0;  // power-method iterations for lambda_max
  size_t iterations_min = 0;  // for lambda_min
  bool converged = false;
};

/// Computes lambda_max and lambda_min. Errors on empty/edgeless graphs.
Result<ExtremeEigenvalues> ComputeExtremeEigenvalues(
    const Graph& graph, const PowerMethodOptions& options = {});

/// The paper's coupling constant c = -1/lambda_min, the largest value for
/// which a virtual vector representation exists. For any graph with at
/// least one edge, lambda_min <= -1, hence c in (0, 1]. Errors when the
/// eigen computation fails.
Result<double> ComputeCouplingConstant(const Graph& graph,
                                       const PowerMethodOptions& options = {});

}  // namespace oca

#endif  // OCA_SPECTRAL_EXTREME_EIGEN_H_
