#include "spectral/spectral_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/random.h"
#include "util/thread_pool.h"

namespace oca {

namespace {

/// Ritz values are re-examined every this many Lanczos steps.
constexpr size_t kCheckInterval = 4;

/// No convergence verdict before this many steps (three checkpoints of
/// history are needed for the Aitken window anyway).
constexpr size_t kMinStepsBeforeStop = 12;

/// Cache entries beyond this are evicted FIFO.
constexpr size_t kMaxCacheEntries = 64;

double Norm2(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

/// Sturm count / bisection over an explicit tridiagonal (k diagonal
/// entries, k-1 squared off-diagonals). The members below and the
/// block-probe finalization share these so the probe arithmetic is the
/// literal same code path as the primary's.
size_t SturmCountBelowT(const double* alpha, const double* beta_sq, size_t k,
                        double x) {
  size_t count = 0;
  double q = alpha[0] - x;
  if (q < 0.0) ++count;
  for (size_t i = 1; i < k; ++i) {
    double denom = q;
    if (std::fabs(denom) < 1e-300) denom = denom < 0.0 ? -1e-300 : 1e-300;
    q = alpha[i] - x - beta_sq[i - 1] / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

double BisectExtremeT(const double* alpha, const double* beta_sq, size_t k,
                      bool smallest, double lo, double hi, double abs_tol) {
  for (int iter = 0; iter < 200 && hi - lo > abs_tol; ++iter) {
    double mid = 0.5 * (lo + hi);
    size_t below = SturmCountBelowT(alpha, beta_sq, k, mid);
    if (smallest ? below >= 1 : below >= k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Seed salts for probe lane j's start vector and restart stream:
/// distinct from each other, from the primary start (options seed) and
/// from the primary restart stream (seed ^ 0xA17C3B5D).
uint64_t AuxStartSeed(uint64_t seed, size_t lane) {
  return seed ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(lane + 1));
}
uint64_t AuxRestartSeed(uint64_t seed, size_t lane) {
  return seed ^ 0xA17C3B5Dull ^
         (0xC2B2AE3D27D4EB4Full * static_cast<uint64_t>(lane + 1));
}

}  // namespace

/// Per-end (lambda_min / lambda_max) convergence tracker: the raw Ritz
/// value, its Aitken-extrapolated refinement, and the checkpoint history
/// the extrapolation runs on.
struct SpectralEngine::EndTracker {
  bool wanted = false;
  bool converged = false;
  double theta = 0.0;       // latest raw Ritz value
  double value = 0.0;       // reported value (extrapolated when reliable)
  double error_estimate = 0.0;  // |extrapolated - raw| at the stop
  size_t converged_at = 0;  // Lanczos step of convergence
  double hist[3] = {0.0, 0.0, 0.0};
  int hist_count = 0;
};

struct SpectralEngine::SweepOutcome {
  EndTracker min_end;
  EndTracker max_end;
  size_t steps = 0;  // Lanczos steps taken (== size of the tridiagonal)
};

/// One auxiliary probe recurrence of a block-mode sweep: an
/// independent Lanczos chain (own start, own restart stream, own
/// tridiagonal) whose mat-vec rides the primary's multi-vector pass.
/// Strictly read-only with respect to the primary recurrence.
struct SpectralEngine::AuxLane {
  std::vector<double> v;      // current lane vector
  std::vector<double> vprev;  // previous lane vector
  std::vector<double> alpha;  // lane T diagonal
  std::vector<double> beta;   // lane T off-diagonal
  std::vector<double> beta_sq;
  double beta_prev = 0.0;
  Rng rng;           // lane's breakdown-restart stream
  bool dead = false;  // lane exhausted its Krylov space (column stays 0)
};

SpectralEngineOptions EngineOptionsFrom(const PowerMethodOptions& pm,
                                        size_t max_steps) {
  SpectralEngineOptions options;
  options.seed = pm.seed;
  options.value_tolerance = pm.tolerance;
  options.coupling_tolerance = pm.coupling_tolerance;
  options.max_steps = max_steps;
  options.block_size = pm.block_size;
  return options;
}

SpectralEngineOptions ValueSolveOptionsFrom(const PowerMethodOptions& pm) {
  return EngineOptionsFrom(pm, std::max<size_t>(2 * pm.max_iterations, 128));
}

SpectralEngine::SpectralEngine(const SpectralEngineOptions& options)
    : options_(options) {}

SpectralEngine::~SpectralEngine() = default;

size_t SpectralEngine::ResolvedThreads() const {
  return options_.num_threads == 0 ? DefaultThreadCount()
                                   : options_.num_threads;
}

bool SpectralEngine::UseParallel(const Graph& graph) const {
  return ResolvedThreads() > 1 &&
         graph.neighbor_array().size() >= options_.parallel_min_edges;
}

Status SpectralEngine::ValidateGraph(const Graph& graph) const {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("spectral solve on empty graph");
  }
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition(
        "spectral solve on edgeless graph: adjacency matrix is zero");
  }
  return Status::OK();
}

void SpectralEngine::EnsureWorkspace(size_t n) {
  if (v_.size() < n) {
    v_.resize(n);
    vprev_.resize(n);
    w_.resize(n);
  }
}

void SpectralEngine::PrepareStartVector(const Graph& graph) {
  const size_t n = graph.num_nodes();
  start_.resize(n);
  bool used_warm = false;
  if (warm_pending_ && warm_.size() == n) {
    // Consumed by its first matching-size solve (used or degenerate);
    // a size-mismatched solve leaves it pending, per the contract "the
    // first subsequent solve whose graph has the same node count".
    warm_pending_ = false;
    double norm = Norm2(warm_);
    if (norm > 0.0 && std::isfinite(norm)) {
      // Blend a small random component into the warm vector: a
      // pathological warm start (the contract admits vectors from a
      // different graph of the same size) must not be exactly orthogonal
      // to the wanted eigenvector, or the sweep could stagnate at an
      // interior eigenvalue — the probability-1 guarantee a random start
      // gives for free. 1e-3 costs a warm solve at most a few steps.
      Rng rng(options_.seed ^ 0x3A7B9E1Full);
      const double eps = 1e-3 / std::sqrt(static_cast<double>(n));
      for (size_t i = 0; i < n; ++i) {
        start_[i] = warm_[i] / norm + eps * rng.NextGaussian();
      }
      double snorm = Norm2(start_);
      for (double& x : start_) x /= snorm;
      used_warm = true;
    }
  }
  if (!used_warm) {
    Rng rng(options_.seed);
    for (double& x : start_) x = rng.NextGaussian();
    double norm = Norm2(start_);
    for (double& x : start_) x /= norm;
  }
}

void SpectralEngine::MatVec(const Graph& graph, const double* x, double* y) {
  const size_t n = graph.num_nodes();
  // Block width is a pure function of n (MatVecBlockRows), so the row
  // partition is identical across serial/pooled runs and kernel
  // variants. Row results are independent of blocking anyway; the
  // partition only matters for parallel grain here.
  const size_t block = MatVecBlockRows(n);
  if (UseParallel(graph)) {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(ResolvedThreads());
    const size_t nblocks = (n + block - 1) / block;
    pool_->ParallelFor(nblocks, [&](size_t blk) {
      size_t begin = blk * block;
      AdjacencyMatVecRows(graph, begin, std::min(n, begin + block), x, y);
    });
  } else {
    AdjacencyMatVecRows(graph, 0, n, x, y);
  }
  ++total_matvecs_;
}

double SpectralEngine::MatVecFused(const Graph& graph, const double* x,
                                   double* y) {
  const size_t n = graph.num_nodes();
  const size_t block = MatVecBlockRows(n);
  const size_t nblocks = (n + block - 1) / block;
  partial_.assign(nblocks, 0.0);
  // The single shared row kernel (fused variant): serial and pooled
  // execution run the same per-block calls, and the alpha partials are
  // combined in block order, so the result is bit-identical for every
  // thread count and kernel variant.
  auto run_block = [&](size_t blk) {
    size_t begin = blk * block;
    partial_[blk] = AdjacencyMatVecRowsFused(
        graph, begin, std::min(n, begin + block), x, y);
  };
  if (UseParallel(graph)) {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(ResolvedThreads());
    pool_->ParallelFor(nblocks, run_block);
  } else {
    for (size_t blk = 0; blk < nblocks; ++blk) run_block(blk);
  }
  ++total_matvecs_;
  double alpha = 0.0;
  for (size_t blk = 0; blk < nblocks; ++blk) alpha += partial_[blk];
  return alpha;
}

double SpectralEngine::MatVecAlphaStep(const Graph& graph) {
  return MatVecFused(graph, v_.data(), w_.data());
}

size_t SpectralEngine::ResolvedBlockSize() const {
  return std::clamp<size_t>(options_.block_size, 1, kMaxMatVecBatch);
}

void SpectralEngine::InitAuxLanes(size_t n) {
  const size_t lanes = ResolvedBlockSize() - 1;
  aux_.assign(lanes, AuxLane());
  for (size_t j = 0; j < lanes; ++j) {
    AuxLane& lane = aux_[j];
    lane.v.resize(n);
    lane.vprev.assign(n, 0.0);
    lane.rng = Rng(AuxRestartSeed(options_.seed, j));
    // Probes always start random (never from the warm-start vector):
    // their value is spanning directions the primary start does NOT
    // cover, so lambda_min gets confirmed from an independent angle.
    Rng start(AuxStartSeed(options_.seed, j));
    for (double& x : lane.v) x = start.NextGaussian();
    double norm = Norm2(lane.v);
    if (norm > 0.0 && std::isfinite(norm)) {
      for (double& x : lane.v) x /= norm;
    }
  }
}

double SpectralEngine::MatVecAlphaStepBlock(const Graph& graph, double gersh) {
  const size_t n = graph.num_nodes();
  const size_t width = aux_.size() + 1;
  block_x_.resize(n * width);
  block_y_.resize(n * width);
  // Pack interleaved: column 0 is the primary v_, columns 1.. the live
  // probe lanes (a dead lane's column stays zero — harmless work).
  for (size_t i = 0; i < n; ++i) block_x_[i * width] = v_[i];
  for (size_t j = 0; j < aux_.size(); ++j) {
    const AuxLane& lane = aux_[j];
    if (lane.dead) {
      for (size_t i = 0; i < n; ++i) block_x_[i * width + j + 1] = 0.0;
    } else {
      for (size_t i = 0; i < n; ++i) block_x_[i * width + j + 1] = lane.v[i];
    }
  }
  const size_t block = MatVecBlockRows(n);
  const size_t nblocks = (n + block - 1) / block;
  block_partial_.assign(nblocks * width, 0.0);
  // One multi-vector fused pass over the SAME fixed row blocks as
  // MatVecFused; column 0 of every per-block partial is bitwise the
  // scalar fused partial, so the primary alpha reduction below is the
  // identical addition sequence.
  auto run_block = [&](size_t blk) {
    size_t begin = blk * block;
    AdjacencyMatVecMultiRowsFused(graph, begin, std::min(n, begin + block),
                                  block_x_.data(), block_y_.data(), width,
                                  block_partial_.data() + blk * width);
  };
  if (UseParallel(graph)) {
    if (!pool_) pool_ = std::make_unique<ThreadPool>(ResolvedThreads());
    pool_->ParallelFor(nblocks, run_block);
  } else {
    for (size_t blk = 0; blk < nblocks; ++blk) run_block(blk);
  }
  ++total_matvecs_;  // one adjacency traversal, regardless of width
  double alpha0 = 0.0;
  for (size_t blk = 0; blk < nblocks; ++blk) {
    alpha0 += block_partial_[blk * width];
  }
  for (size_t i = 0; i < n; ++i) w_[i] = block_y_[i * width];
  for (size_t j = 0; j < aux_.size(); ++j) {
    double aj = 0.0;
    for (size_t blk = 0; blk < nblocks; ++blk) {
      aj += block_partial_[blk * width + j + 1];
    }
    AdvanceAuxLane(&aux_[j], j + 1, width, n, aj, gersh);
  }
  return alpha0;
}

void SpectralEngine::AdvanceAuxLane(AuxLane* lane, size_t col, size_t width,
                                    size_t n, double a, double gersh) {
  if (lane->dead) return;
  lane->alpha.push_back(a);
  aux_w_.resize(n);
  double b2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double w = block_y_[i * width + col] - a * lane->v[i] -
               lane->beta_prev * lane->vprev[i];
    aux_w_[i] = w;
    b2 += w * w;
  }
  double b = std::sqrt(b2);
  if (!(b > 1e-12 * std::max(1.0, gersh))) {
    // Same breakdown policy as the primary recurrence, on the lane's
    // own restart stream; a truly exhausted lane goes dormant.
    for (size_t i = 0; i < n; ++i) aux_w_[i] = lane->rng.NextGaussian();
    double dv = 0.0, dp = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dv += aux_w_[i] * lane->v[i];
      dp += aux_w_[i] * lane->vprev[i];
    }
    double nb2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      aux_w_[i] -= dv * lane->v[i] + dp * lane->vprev[i];
      nb2 += aux_w_[i] * aux_w_[i];
    }
    if (!(nb2 > 0.0)) {
      lane->dead = true;
      return;
    }
    double nb = std::sqrt(nb2);
    lane->beta.push_back(0.0);
    lane->beta_sq.push_back(0.0);
    lane->beta_prev = 0.0;
    for (size_t i = 0; i < n; ++i) {
      lane->vprev[i] = lane->v[i];
      lane->v[i] = aux_w_[i] / nb;
    }
    return;
  }
  lane->beta.push_back(b);
  lane->beta_sq.push_back(b2);
  lane->beta_prev = b;
  for (size_t i = 0; i < n; ++i) {
    lane->vprev[i] = lane->v[i];
    lane->v[i] = aux_w_[i] / b;
  }
}

size_t SpectralEngine::SturmCountBelow(size_t k, double x) const {
  return SturmCountBelowT(alpha_.data(), beta_sq_.data(), k, x);
}

double SpectralEngine::BisectExtreme(size_t k, bool smallest, double lo,
                                     double hi, double abs_tol) const {
  return BisectExtremeT(alpha_.data(), beta_sq_.data(), k, smallest, lo, hi,
                        abs_tol);
}

double SpectralEngine::TridiagEigenvector(size_t k, double theta,
                                          std::vector<double>* s) const {
  tri_s_.assign(k, 1.0 / std::sqrt(static_cast<double>(k)));
  if (k == 1) {
    tri_s_[0] = 1.0;
  } else {
    // Two sweeps of inverse iteration with a Thomas solve; extreme Ritz
    // values are well separated inside T, so this converges immediately.
    for (int sweep = 0; sweep < 2; ++sweep) {
      tri_d_.resize(k);
      tri_rhs_ = tri_s_;
      double d0 = alpha_[0] - theta;
      if (std::fabs(d0) < 1e-12) d0 = d0 < 0.0 ? -1e-12 : 1e-12;
      tri_d_[0] = d0;
      for (size_t i = 1; i < k; ++i) {
        double m = beta_[i - 1] / tri_d_[i - 1];
        double di = alpha_[i] - theta - m * beta_[i - 1];
        if (std::fabs(di) < 1e-12) di = di < 0.0 ? -1e-12 : 1e-12;
        tri_d_[i] = di;
        tri_rhs_[i] -= m * tri_rhs_[i - 1];
      }
      tri_s_[k - 1] = tri_rhs_[k - 1] / tri_d_[k - 1];
      for (size_t i = k - 1; i-- > 0;) {
        tri_s_[i] = (tri_rhs_[i] - beta_[i] * tri_s_[i + 1]) / tri_d_[i];
      }
      double norm = Norm2(tri_s_);
      if (!(norm > 0.0) || !std::isfinite(norm)) {
        tri_s_.assign(k, 1.0 / std::sqrt(static_cast<double>(k)));
        break;
      }
      for (double& x : tri_s_) x /= norm;
    }
  }
  if (s != nullptr) *s = tri_s_;
  return tri_s_[k - 1];
}

SpectralEngine::SweepOutcome SpectralEngine::LanczosSweep(
    const Graph& graph, bool need_min, bool need_max, double tol_min,
    double tol_max, size_t step_cap, double residual_target,
    const std::vector<double>* ritz_weights, size_t replay_steps,
    std::vector<double>* eigenvector) {
  const size_t n = graph.num_nodes();
  EnsureWorkspace(n);

  // Gershgorin/degree bound: every adjacency eigenvalue lies within
  // [-max_row_sum, max_row_sum]. For an unweighted graph the row sum is
  // the degree (MaxWeightedDegree degrades to exactly MaxDegree there,
  // so weightless sweeps keep their historical bracket bit-for-bit);
  // for a weighted one it is the weighted degree. This brackets the
  // Ritz bisection and scales the breakdown threshold before any
  // iteration happens.
  const double gersh = graph.MaxWeightedDegree();
  const double glo = -gersh - 1.0;
  const double ghi = gersh + 1.0;

  const bool replay = ritz_weights != nullptr;
  const size_t cap = replay ? replay_steps : std::max<size_t>(step_cap, 1);

  // Block mode applies to pass-1 sweeps only. A replay rebuilds the
  // primary basis — which is bit-identical at every width — so the
  // scalar path is the cheapest correct choice there.
  if (!replay) {
    block_probes_ = BlockProbeStats{};
    block_active_ = ResolvedBlockSize() > 1;
    if (block_active_) InitAuxLanes(n);
  } else {
    block_active_ = false;
  }

  std::copy(start_.begin(), start_.end(), v_.begin());
  std::fill(vprev_.begin(), vprev_.begin() + n, 0.0);
  alpha_.clear();
  beta_.clear();
  beta_sq_.clear();
  // Breakdown restarts draw from a sweep-local generator so a replay
  // pass reproduces pass 1 bit-for-bit.
  Rng restart_rng(options_.seed ^ 0xA17C3B5Dull);

  SweepOutcome out;
  out.min_end.wanted = need_min;
  out.max_end.wanted = need_max;
  if (replay && eigenvector != nullptr) eigenvector->assign(n, 0.0);

  auto check_end = [&](EndTracker* end, bool smallest, double tol,
                       size_t k, size_t step, double current_beta) {
    double scale_guess =
        std::max(1.0, std::fabs(end->hist_count > 0 ? end->theta : gersh));
    double abs_tol = std::max(1e-13, 0.02 * tol * scale_guess);
    double theta = BisectExtreme(k, smallest, glo, ghi, abs_tol);
    end->theta = theta;
    end->value = theta;
    if (end->hist_count < 3) {
      end->hist[end->hist_count++] = theta;
    } else {
      end->hist[0] = end->hist[1];
      end->hist[1] = end->hist[2];
      end->hist[2] = theta;
    }
    if (step < kMinStepsBeforeStop || end->hist_count < 3) return;
    double scale = std::max(1.0, std::fabs(theta));
    double d1 = end->hist[1] - end->hist[0];
    double d2 = end->hist[2] - end->hist[1];
    // Raw stagnation gate: the Ritz sequence must already be moving at
    // the tolerance scale before extrapolation is trusted.
    if (std::fabs(d2) > 2.0 * tol * scale) return;
    double extrap = theta;
    bool extrap_accepted = false;
    double dd = d2 - d1;
    if (dd != 0.0 && std::fabs(d2) < std::fabs(d1)) {
      double cand = theta - d2 * d2 / dd;
      // Extreme Ritz sequences are monotone (Cauchy interlacing); reject
      // extrapolations that violate that or leave the Gershgorin hull.
      bool monotone_ok = smallest ? cand <= theta + abs_tol
                                  : cand >= theta - abs_tol;
      if (monotone_ok && std::fabs(cand - theta) <= 50.0 * std::fabs(d2) &&
          cand >= glo && cand <= ghi) {
        extrap = cand;
        extrap_accepted = true;
      }
    }
    double err_est = std::fabs(extrap - theta);
    if (err_est > tol * scale) return;
    // Without an accepted extrapolation there is no tail estimate at all
    // (err_est is trivially 0), so demand much deeper raw stagnation
    // before declaring convergence — a sequence plateauing at an interior
    // eigenvalue must not stop just because two checkpoints agree.
    if (!extrap_accepted && std::fabs(d2) > 0.25 * tol * scale) return;
    if (residual_target > 0.0) {
      // Eigenpair mode: additionally require the Ritz residual bound
      // beta_k * |s_k| to be small so the reconstructed vector is good.
      double s_last = TridiagEigenvector(k, theta, nullptr);
      if (std::fabs(current_beta * s_last) > residual_target * scale) return;
    }
    end->converged = true;
    end->value = extrap;
    // Remaining-error bound for the conservative coupling bias: the
    // Aitken correction estimates the error of the RAW value; adding
    // half the last raw step covers the multi-mode case where the
    // correction alone under-estimates, and the tol-proportional floor
    // covers a deceptively stagnant sequence whose correction shrank
    // faster than the true residual error. None of the three terms
    // costs a significant digit (each is <= tol * scale at the stop).
    end->error_estimate =
        std::max(err_est + 0.5 * std::fabs(d2), 0.05 * tol * scale);
    end->converged_at = step;
  };

  double beta_prev = 0.0;
  for (size_t step = 1; step <= cap; ++step) {
    if (replay) {
      double wgt = (*ritz_weights)[step - 1];
      if (eigenvector != nullptr && wgt != 0.0) {
        double* y = eigenvector->data();
        for (size_t i = 0; i < n; ++i) y[i] += wgt * v_[i];
      }
      if (step == cap) {
        out.steps = step;
        break;  // last basis vector consumed; no need to advance
      }
    }

    double a = block_active_ ? MatVecAlphaStepBlock(graph, gersh)
                             : MatVecAlphaStep(graph);
    alpha_.push_back(a);
    double b2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      w_[i] -= a * v_[i] + beta_prev * vprev_[i];
      b2 += w_[i] * w_[i];
    }
    double b = std::sqrt(b2);
    out.steps = step;

    const bool breakdown = !(b > 1e-12 * std::max(1.0, gersh));

    if (!replay) {
      const size_t k = alpha_.size();
      bool at_checkpoint =
          (step % kCheckInterval == 0) || breakdown || step == cap;
      if (at_checkpoint) {
        if (need_min && !out.min_end.converged) {
          check_end(&out.min_end, /*smallest=*/true, tol_min, k, step, b);
        }
        if (need_max && !out.max_end.converged) {
          check_end(&out.max_end, /*smallest=*/false, tol_max, k, step, b);
        }
        if (breakdown && k >= n) {
          // The Krylov blocks exhausted the whole space: every Ritz value
          // is an exact eigenvalue, so the extremes are final (up to the
          // bisection width, which becomes the error estimate).
          for (EndTracker* end : {&out.min_end, &out.max_end}) {
            if (end->wanted && !end->converged) {
              double tol = end == &out.min_end ? tol_min : tol_max;
              end->converged = true;
              end->value = end->theta;
              end->error_estimate = std::max(
                  1e-13, 0.02 * tol * std::max(1.0, std::fabs(end->theta)));
              end->converged_at = step;
            }
          }
        }
        bool done = (!need_min || out.min_end.converged) &&
                    (!need_max || out.max_end.converged);
        if (done) break;
      }
    }

    if (breakdown) {
      if (step >= cap) break;
      // The start vector's Krylov space is invariant; open a new block
      // (beta = 0 keeps T block-tridiagonal, so Sturm counts and Ritz
      // extraction stay valid) from a fresh direction.
      for (size_t i = 0; i < n; ++i) w_[i] = restart_rng.NextGaussian();
      double dv = 0.0, dp = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dv += w_[i] * v_[i];
        dp += w_[i] * vprev_[i];
      }
      double nb2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        w_[i] -= dv * v_[i] + dp * vprev_[i];
        nb2 += w_[i] * w_[i];
      }
      if (!(nb2 > 0.0)) break;  // space truly exhausted (tiny graph)
      double nb = std::sqrt(nb2);
      beta_.push_back(0.0);
      beta_sq_.push_back(0.0);
      beta_prev = 0.0;
      for (size_t i = 0; i < n; ++i) {
        vprev_[i] = v_[i];
        v_[i] = w_[i] / nb;
      }
      continue;
    }

    beta_.push_back(b);
    beta_sq_.push_back(b2);
    beta_prev = b;
    for (size_t i = 0; i < n; ++i) {
      vprev_[i] = v_[i];
      v_[i] = w_[i] / b;
    }
  }

  // A wanted end that ran out of steps gets a best-effort error scale —
  // the last raw checkpoint step. This is NOT a bound (the remaining
  // geometric tail can exceed it); callers see converged == false and
  // the coupling bias at least leans the right way instead of trusting
  // the raw Ritz value verbatim.
  if (!replay) {
    for (EndTracker* end : {&out.min_end, &out.max_end}) {
      if (end->wanted && !end->converged && end->hist_count >= 2) {
        end->error_estimate = std::fabs(end->hist[end->hist_count - 1] -
                                        end->hist[end->hist_count - 2]);
      }
    }
  }

  if (block_active_) {
    // Extract each probe lane's minimum Ritz value from its own
    // tridiagonal — the same Sturm bisection the primary runs. A probe
    // counts as converged when truncating its last kCheckInterval steps
    // moves its Ritz minimum by less than the sweep tolerance (the raw
    // stagnation test, evaluated once at the end rather than per
    // checkpoint — the probes never gate the stop).
    block_probes_.valid = true;
    block_probes_.block_size = aux_.size() + 1;
    block_probes_.steps = out.steps;
    const double scale_tol =
        std::max(1e-13, 0.02 * tol_min * std::max(1.0, gersh));
    bool have_min = out.min_end.wanted;
    double block_min = have_min ? out.min_end.theta : 0.0;
    for (const AuxLane& lane : aux_) {
      const size_t k = lane.alpha.size();
      if (k == 0) {
        block_probes_.probe_lambda_min.push_back(0.0);
        block_probes_.probe_converged.push_back(false);
        continue;
      }
      double theta = BisectExtremeT(lane.alpha.data(), lane.beta_sq.data(), k,
                                    /*smallest=*/true, glo, ghi, scale_tol);
      bool conv = false;
      if (k > kCheckInterval) {
        double prev = BisectExtremeT(lane.alpha.data(), lane.beta_sq.data(),
                                     k - kCheckInterval, /*smallest=*/true,
                                     glo, ghi, scale_tol);
        conv = std::fabs(theta - prev) <=
               2.0 * tol_min * std::max(1.0, std::fabs(theta));
      }
      block_probes_.probe_lambda_min.push_back(theta);
      block_probes_.probe_converged.push_back(conv);
      block_min = have_min ? std::min(block_min, theta) : theta;
      have_min = true;
    }
    block_probes_.block_lambda_min = block_min;
    block_active_ = false;
  }

  return out;
}

SpectralEngine::CacheEntry* SpectralEngine::FindEntry(const Graph& graph) {
  for (auto& entry : cache_) {
    if (entry.graph == &graph && entry.nodes == graph.num_nodes() &&
        entry.edges == graph.num_edges()) {
      return &entry;
    }
  }
  return nullptr;
}

const SpectralEngine::CacheEntry* SpectralEngine::FindEntry(
    const Graph& graph) const {
  return const_cast<SpectralEngine*>(this)->FindEntry(graph);
}

SpectralEngine::CacheEntry* SpectralEngine::TouchEntry(const Graph& graph) {
  if (CacheEntry* found = FindEntry(graph)) return found;
  if (cache_.size() >= kMaxCacheEntries) {
    cache_.erase(cache_.begin());
  }
  CacheEntry entry;
  entry.graph = &graph;
  entry.nodes = graph.num_nodes();
  entry.edges = graph.num_edges();
  cache_.push_back(std::move(entry));
  return &cache_.back();
}

void SpectralEngine::ConsumeWarmStartOnCacheHit(size_t n) {
  // A cache hit IS the "first subsequent solve" of the warm-start
  // contract: a size-matching pending vector is consumed (it has nothing
  // to seed), so it cannot leak into a later unrelated solve that
  // merely shares the node count. A size-mismatched vector stays
  // pending, exactly as in PrepareStartVector.
  if (warm_pending_ && warm_.size() == n) warm_pending_ = false;
}

Result<ExtremeEigenvalues> SpectralEngine::Extremes(const Graph& graph) {
  if (Status s = ValidateGraph(graph); !s.ok()) return s;
  if (CacheEntry* entry = FindEntry(graph); entry && entry->has_extremes) {
    ++cache_hits_;
    ConsumeWarmStartOnCacheHit(graph.num_nodes());
    return entry->extremes;
  }

  PrepareStartVector(graph);
  SweepOutcome sweep = LanczosSweep(
      graph, /*need_min=*/true, /*need_max=*/true, options_.value_tolerance,
      options_.value_tolerance, options_.max_steps, /*residual_target=*/0.0,
      nullptr, 0, nullptr);

  ExtremeEigenvalues out;
  out.lambda_max = sweep.max_end.value;
  out.lambda_min = sweep.min_end.value;
  out.iterations_max =
      sweep.max_end.converged ? sweep.max_end.converged_at : sweep.steps;
  out.iterations_min =
      sweep.min_end.converged ? sweep.min_end.converged_at : sweep.steps;
  out.converged = sweep.max_end.converged && sweep.min_end.converged;

  CacheEntry* entry = TouchEntry(graph);
  entry->has_extremes = true;
  entry->extremes = out;
  // Seed the coupling cache only from a CONVERGED min end: the
  // admissibility bias is only a guarantee then (an unconverged Ritz
  // value sits above lambda_min by an unbounded tail, and a later
  // CouplingConstant call would return the overshoot as a cache hit).
  if (!entry->has_coupling && out.lambda_min < 0.0 &&
      sweep.min_end.converged) {
    double safe_min = out.lambda_min - sweep.min_end.error_estimate;
    double c = ClampCouplingToAdmissible(-1.0 / safe_min);
    if (c > 0.0) {
      entry->coupling = {c, out.lambda_min, sweep.steps, out.converged};
      entry->has_coupling = true;
    }
  }
  return out;
}

Result<CouplingResult> SpectralEngine::CouplingConstant(const Graph& graph) {
  return CouplingConstantWithVector(graph, nullptr);
}

Result<CouplingResult> SpectralEngine::CouplingConstantWithVector(
    const Graph& graph, std::vector<double>* eigenvector) {
  if (Status s = ValidateGraph(graph); !s.ok()) return s;
  const bool want_vector = eigenvector != nullptr;
  if (CacheEntry* entry = FindEntry(graph); entry && entry->has_coupling &&
      (!want_vector || !entry->min_eigenvector.empty())) {
    ++cache_hits_;
    ConsumeWarmStartOnCacheHit(graph.num_nodes());
    CouplingResult hit = entry->coupling;
    hit.iterations = 0;  // answered from cache
    if (want_vector) *eigenvector = entry->min_eigenvector;
    return hit;
  }

  PrepareStartVector(graph);
  SweepOutcome sweep = LanczosSweep(
      graph, /*need_min=*/true, /*need_max=*/false,
      options_.coupling_tolerance, options_.coupling_tolerance,
      options_.max_steps, /*residual_target=*/0.0, nullptr, 0, nullptr);

  double lambda_min = sweep.min_end.value;
  if (lambda_min >= 0.0) {
    return Status::Internal(
        "lambda_min must be negative for a graph with edges");
  }
  // Conservative bias: push the estimate toward the admissible side by
  // its own error estimate, so on a CONVERGED solve c = -1/lambda_min
  // never exceeds the true admissible maximum because of early stopping.
  // (The seed path had the opposite failure mode: an unconverged
  // lambda_min OVERSHOT c.) If the sweep hit its step cap the bias is
  // only best-effort — converged == false signals that to callers.
  double safe_min = lambda_min - sweep.min_end.error_estimate;
  double c = ClampCouplingToAdmissible(-1.0 / safe_min);
  if (c <= 0.0) {
    return Status::Internal("coupling constant must be positive");
  }

  CouplingResult result{c, lambda_min, sweep.steps, sweep.min_end.converged};
  std::vector<double> vec;
  if (want_vector) {
    // Raw Ritz value: the reconstruction must match the basis that was
    // actually built, not the extrapolated refinement.
    vec = ReconstructRitzVector(graph, sweep.min_end.theta);
  }
  CacheEntry* entry = TouchEntry(graph);
  if (entry->has_coupling) {
    // A vector-less cache hit forced a re-sweep; keep the cached coupling
    // values so repeated calls agree exactly, and only adopt the vector.
    result = entry->coupling;
    result.iterations = sweep.steps;
  } else {
    entry->has_coupling = true;
    entry->coupling = result;
  }
  if (want_vector) {
    entry->min_eigenvector = vec;
    *eigenvector = std::move(vec);
  }
  return result;
}

Result<EigenEstimate> SpectralEngine::EigenpairImpl(
    const Graph& graph, const PowerMethodOptions& pm, bool smallest) {
  if (Status s = ValidateGraph(graph); !s.ok()) return s;

  const double tol = std::max(pm.tolerance, 1e-14);
  const double residual_target = std::sqrt(tol);
  PrepareStartVector(graph);
  SweepOutcome sweep =
      LanczosSweep(graph, smallest, !smallest, tol, tol, pm.max_iterations,
                   residual_target, nullptr, 0, nullptr);
  const EndTracker& end = smallest ? sweep.min_end : sweep.max_end;

  EigenEstimate est;
  est.eigenvalue = end.theta;  // raw Ritz value, consistent with the vector
  est.iterations = sweep.steps;
  est.converged = end.converged;
  est.eigenvector = ReconstructRitzVector(graph, end.theta);
  return est;
}

std::vector<double> SpectralEngine::ReconstructRitzVector(const Graph& graph,
                                                          double theta) {
  // Replay pass: y = sum_j s_j v_j over the basis of the sweep that just
  // ran (same start vector, same restart stream, bit-identical vectors).
  const size_t k = alpha_.size();
  std::vector<double> weights;
  TridiagEigenvector(k, theta, &weights);
  std::vector<double> vec;
  LanczosSweep(graph, false, false, 0.0, 0.0, 0, 0.0, &weights, k, &vec);
  double norm = Norm2(vec);
  if (norm > 0.0 && std::isfinite(norm)) {
    for (double& x : vec) x /= norm;
  }
  // Deterministic sign: the entry of largest magnitude is positive.
  size_t arg = 0;
  for (size_t i = 1; i < vec.size(); ++i) {
    if (std::fabs(vec[i]) > std::fabs(vec[arg])) arg = i;
  }
  if (!vec.empty() && vec[arg] < 0.0) {
    for (double& x : vec) x = -x;
  }
  return vec;
}

Result<EigenEstimate> SpectralEngine::Dominant(const Graph& graph,
                                               const PowerMethodOptions& pm) {
  return EigenpairImpl(graph, pm, /*smallest=*/false);
}

Result<EigenEstimate> SpectralEngine::MinEigenpair(
    const Graph& graph, const PowerMethodOptions& pm) {
  OCA_ASSIGN_OR_RETURN(EigenEstimate est,
                       EigenpairImpl(graph, pm, /*smallest=*/true));
  CacheEntry* entry = TouchEntry(graph);
  entry->min_eigenvector = est.eigenvector;
  return est;
}

void SpectralEngine::SetWarmStart(std::span<const double> eigenvector) {
  warm_.assign(eigenvector.begin(), eigenvector.end());
  warm_pending_ = !warm_.empty();
}

bool SpectralEngine::WarmStartFromParent(
    std::span<const double> parent_eigenvector,
    std::span<const NodeId> to_parent) {
  if (to_parent.empty()) return false;
  std::vector<double> restricted(to_parent.size());
  for (size_t i = 0; i < to_parent.size(); ++i) {
    if (to_parent[i] >= parent_eigenvector.size()) return false;
    restricted[i] = parent_eigenvector[to_parent[i]];
  }
  double norm = Norm2(restricted);
  // The useful-signal threshold: if the parent eigenvector carries less
  // than ~1e-6 of its unit mass on this subgraph, the restriction is
  // numerically indistinguishable from noise and a random start is the
  // better seed. (PrepareStartVector renormalizes and blends in its own
  // random component, so any norm above the floor is safe to use.)
  if (!(norm > 1e-6) || !std::isfinite(norm)) return false;
  for (double& x : restricted) x /= norm;
  SetWarmStart(restricted);
  return true;
}

bool SpectralEngine::GetCachedMinEigenvector(const Graph& graph,
                                             std::vector<double>* out) const {
  const CacheEntry* entry = FindEntry(graph);
  if (entry == nullptr || entry->min_eigenvector.empty()) return false;
  *out = entry->min_eigenvector;
  return true;
}

void SpectralEngine::Forget(const Graph& graph) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->graph == &graph) {
      cache_.erase(it);
      return;
    }
  }
}

void SpectralEngine::ClearCache() { cache_.clear(); }

SpectralEngineSet::SpectralEngineSet(size_t count,
                                     const SpectralEngineOptions& options) {
  engines_.reserve(std::max<size_t>(1, count));
  for (size_t i = 0; i < std::max<size_t>(1, count); ++i) {
    engines_.push_back(std::make_unique<SpectralEngine>(options));
  }
}

}  // namespace oca
