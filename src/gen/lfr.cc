#include "gen/lfr.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <unordered_set>

#include "gen/configuration_model.h"
#include "gen/degree_sequence.h"
#include "graph/graph_builder.h"
#include "util/random.h"

namespace oca {

namespace {

struct EdgeHash {
  size_t operator()(const Edge& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.first) << 32) |
                                 e.second);
  }
};

inline Edge Canon(NodeId u, NodeId v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

// True when the two sorted membership lists share a community.
bool ShareCommunity(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

Status ValidateLfrOptions(const LfrOptions& options) {
  const size_t n = options.num_nodes;
  if (n < 4) {
    return Status::InvalidArgument("LFR needs at least 4 nodes");
  }
  if (options.mixing < 0.0 || options.mixing > 1.0) {
    return Status::InvalidArgument("mixing parameter must be in [0,1]");
  }
  if (options.average_degree < 1.0 ||
      options.average_degree > static_cast<double>(options.max_degree)) {
    return Status::InvalidArgument("average degree out of range");
  }
  if (options.min_community > options.max_community) {
    return Status::InvalidArgument("community size bounds invalid");
  }
  if (options.overlapping_nodes > n) {
    return Status::InvalidArgument("overlapping_nodes exceeds node count");
  }
  if (options.overlapping_nodes > 0 && options.overlap_memberships < 2) {
    return Status::InvalidArgument(
        "overlap_memberships must be >= 2 when overlapping_nodes > 0");
  }
  return Status::OK();
}

}  // namespace

Result<BenchmarkGraph> GenerateLfr(const LfrOptions& options,
                                   LfrStats* stats) {
  OCA_RETURN_IF_ERROR(ValidateLfrOptions(options));
  const size_t n = options.num_nodes;
  const uint32_t om =
      options.overlapping_nodes > 0 ? options.overlap_memberships : 1;

  Rng rng(options.seed);

  // --- 1. Degrees. ---
  OCA_ASSIGN_OR_RETURN(
      uint64_t min_degree,
      SolveMinDegree(options.average_degree, options.max_degree,
                     options.degree_exponent));
  std::vector<uint32_t> degree =
      SamplePowerLawSequence(n, min_degree, options.max_degree,
                             options.degree_exponent, &rng);

  // --- 2. Internal/external split. ---
  std::vector<uint32_t> internal_degree(n), external_degree(n);
  for (size_t v = 0; v < n; ++v) {
    internal_degree[v] = static_cast<uint32_t>(
        std::lround((1.0 - options.mixing) * degree[v]));
    if (internal_degree[v] > degree[v]) internal_degree[v] = degree[v];
    external_degree[v] = degree[v] - internal_degree[v];
  }

  // --- 3. Community sizes over total memberships. ---
  const size_t total_memberships =
      n + options.overlapping_nodes * (static_cast<size_t>(om) - 1);
  const uint32_t max_community =
      static_cast<uint32_t>(std::min<size_t>(options.max_community, n));
  OCA_ASSIGN_OR_RETURN(
      std::vector<uint32_t> sizes,
      SampleCommunitySizes(total_memberships, options.min_community,
                           max_community, options.community_exponent, &rng));
  const size_t num_comms = sizes.size();
  if (om > num_comms) {
    return Status::InvalidArgument(
        "overlap_memberships (" + std::to_string(om) +
        ") exceeds the number of communities (" + std::to_string(num_comms) +
        "); enlarge the graph or shrink communities");
  }

  // --- 4. Node -> memberships assignment. ---
  // Nodes in random order; the first `overlapping_nodes` of the order get
  // `om` memberships, everyone else one. Each membership carries an even
  // share of the node's internal degree. A membership slot picks a random
  // community with remaining capacity whose size can absorb the share
  // (size-1 >= share) and which the node has not joined yet; when no such
  // community exists, the largest-capacity one is used and the share
  // capped (the excess moves to the external side).
  std::vector<uint32_t> capacity = sizes;
  std::vector<std::vector<uint32_t>> comms_of(n);
  std::vector<std::vector<uint32_t>> share_of(n);  // aligned with comms_of
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(&order);

  for (size_t rank = 0; rank < n; ++rank) {
    NodeId v = order[rank];
    uint32_t slots = rank < options.overlapping_nodes ? om : 1;
    uint32_t base_share = internal_degree[v] / slots;
    uint32_t remainder = internal_degree[v] % slots;
    for (uint32_t slot = 0; slot < slots; ++slot) {
      uint32_t share = base_share + (slot < remainder ? 1 : 0);
      // Random feasible community via reservoir sampling.
      uint32_t chosen = UINT32_MAX;
      size_t feasible_seen = 0;
      uint32_t best_cap = 0, best_cap_idx = UINT32_MAX;
      for (uint32_t c = 0; c < num_comms; ++c) {
        if (capacity[c] == 0) continue;
        if (std::find(comms_of[v].begin(), comms_of[v].end(), c) !=
            comms_of[v].end()) {
          continue;
        }
        if (capacity[c] > best_cap) {
          best_cap = capacity[c];
          best_cap_idx = c;
        }
        if (sizes[c] > share) {
          ++feasible_seen;
          if (rng.NextBounded(feasible_seen) == 0) chosen = c;
        }
      }
      if (chosen == UINT32_MAX) {
        if (best_cap_idx == UINT32_MAX) {
          // Every community with capacity already contains v (possible
          // for extreme on/om); drop the slot, share goes external.
          external_degree[v] += share;
          continue;
        }
        chosen = best_cap_idx;
        uint32_t cap_share = sizes[chosen] - 1;
        if (share > cap_share) {
          external_degree[v] += share - cap_share;
          share = cap_share;
        }
      }
      comms_of[v].push_back(chosen);
      share_of[v].push_back(share);
      --capacity[chosen];
    }
    // Keep membership lists sorted for the overlap checks; shares follow.
    for (size_t i = 1; i < comms_of[v].size(); ++i) {
      size_t j = i;
      while (j > 0 && comms_of[v][j - 1] > comms_of[v][j]) {
        std::swap(comms_of[v][j - 1], comms_of[v][j]);
        std::swap(share_of[v][j - 1], share_of[v][j]);
        --j;
      }
    }
  }

  std::vector<std::vector<NodeId>> members(num_comms);
  std::vector<std::vector<uint32_t>> member_share(num_comms);
  for (NodeId v = 0; v < n; ++v) {
    for (size_t i = 0; i < comms_of[v].size(); ++i) {
      members[comms_of[v][i]].push_back(v);
      member_share[comms_of[v][i]].push_back(share_of[v][i]);
    }
  }

  // --- 5. Intra-community wiring. ---
  std::unordered_set<Edge, EdgeHash> edge_set;
  std::vector<Edge> edges;
  for (size_t c = 0; c < num_comms; ++c) {
    const auto& nodes = members[c];
    if (nodes.size() < 2) continue;
    std::vector<uint32_t> local_deg(nodes.size());
    uint64_t sum = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      uint32_t d = member_share[c][i];
      d = std::min<uint32_t>(d, static_cast<uint32_t>(nodes.size() - 1));
      local_deg[i] = d;
      sum += d;
    }
    if (sum % 2 == 1) {
      size_t arg = 0;
      for (size_t i = 1; i < local_deg.size(); ++i) {
        if (local_deg[i] > local_deg[arg]) arg = i;
      }
      if (local_deg[arg] > 0) {
        --local_deg[arg];
        ++external_degree[nodes[arg]];
      }
    }
    OCA_ASSIGN_OR_RETURN(std::vector<Edge> local_edges,
                         ConfigurationModelEdges(local_deg, &rng));
    for (auto [a, b] : local_edges) {
      Edge e = Canon(nodes[a], nodes[b]);
      if (edge_set.insert(e).second) edges.push_back(e);
    }
  }

  // --- 6. External wiring. ---
  {
    uint64_t ext_sum = 0;
    for (uint32_t d : external_degree) ext_sum += d;
    if (ext_sum % 2 == 1) {
      for (auto& d : external_degree) {
        if (d > 0) {
          --d;
          break;
        }
      }
    }
  }
  OCA_ASSIGN_OR_RETURN(std::vector<Edge> ext_edges,
                       ConfigurationModelEdges(external_degree, &rng));

  // Rewire external edges that landed inside a shared community (or that
  // duplicate an intra edge): pair up bad edges and cross endpoints for a
  // bounded number of passes; leftovers are erased.
  size_t passes = 0;
  std::vector<Edge> good;
  good.reserve(ext_edges.size());
  std::vector<Edge> bad;
  auto is_internal = [&](NodeId u, NodeId v) {
    return ShareCommunity(comms_of[u], comms_of[v]);
  };
  for (auto [u, v] : ext_edges) {
    Edge e = Canon(u, v);
    if (is_internal(u, v) || edge_set.count(e)) {
      bad.push_back(e);
    } else if (edge_set.insert(e).second) {
      good.push_back(e);
    }
  }
  while (!bad.empty() && passes < options.max_rewire_passes) {
    ++passes;
    rng.Shuffle(&bad);
    std::vector<Edge> next_round;
    size_t i = 0;
    for (; i + 1 < bad.size(); i += 2) {
      auto [a, b] = bad[i];
      auto [x, y] = bad[i + 1];
      Edge e1 = Canon(a, y), e2 = Canon(x, b);
      bool ok1 = a != y && !is_internal(a, y) && !edge_set.count(e1);
      bool ok2 = x != b && !is_internal(x, b) && !edge_set.count(e2) &&
                 e1 != e2;
      if (ok1 && ok2) {
        edge_set.insert(e1);
        edge_set.insert(e2);
        good.push_back(e1);
        good.push_back(e2);
      } else {
        Edge f1 = Canon(a, x), f2 = Canon(b, y);
        bool ok3 = a != x && !is_internal(a, x) && !edge_set.count(f1);
        bool ok4 = b != y && !is_internal(b, y) && !edge_set.count(f2) &&
                   f1 != f2;
        if (ok3 && ok4) {
          edge_set.insert(f1);
          edge_set.insert(f2);
          good.push_back(f1);
          good.push_back(f2);
        } else {
          next_round.push_back(bad[i]);
          next_round.push_back(bad[i + 1]);
        }
      }
    }
    if (i < bad.size()) next_round.push_back(bad[i]);
    if (next_round.size() == bad.size()) break;  // no progress
    bad.swap(next_round);
  }
  size_t erased = bad.size();
  edges.insert(edges.end(), good.begin(), good.end());

  OCA_ASSIGN_OR_RETURN(Graph graph, BuildGraph(n, edges));

  Cover truth;
  for (auto& m : members) truth.Add(std::move(m));
  truth.Canonicalize();

  if (stats != nullptr) {
    stats->erased_external_edges = erased;
    stats->rewire_passes_used = passes;
    stats->realized_mixing = MeasureMixing(graph, truth);
  }
  return BenchmarkGraph{std::move(graph), std::move(truth)};
}

double MeasureMixing(const Graph& graph, const Cover& cover) {
  auto index = cover.BuildNodeIndex(graph.num_nodes());
  uint64_t external = 0, total = 0;
  graph.ForEachEdge([&](NodeId u, NodeId v) {
    ++total;
    // External iff the endpoints share no community.
    size_t i = 0, j = 0;
    bool shared = false;
    while (i < index[u].size() && j < index[v].size()) {
      if (index[u][i] < index[v][j]) {
        ++i;
      } else if (index[v][j] < index[u][i]) {
        ++j;
      } else {
        shared = true;
        break;
      }
    }
    if (!shared) ++external;
  });
  return total > 0 ? static_cast<double>(external) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace oca
