// LFR benchmark generator (Lancichinetti, Fortunato, Radicchi, Phys. Rev.
// E 78, 046110, 2008): realistic community-detection benchmarks with
// power-law degree and community-size distributions and a tunable mixing
// parameter mu.
//
// Pipeline (clean-room reimplementation of the published construction):
//   1. sample node degrees from a power law (exponent tau1) whose cutoff
//      is solved so the mean matches `average_degree`;
//   2. split each degree into internal (1-mu) and external (mu) parts;
//   3. sample community sizes from a power law (exponent tau2) summing to n;
//   4. assign nodes to communities so every node fits (internal degree
//      strictly smaller than its community);
//   5. wire each community internally with a configuration model;
//   6. wire external stubs globally, then rewire edges that accidentally
//      land inside a community (bounded passes, leftovers erased).
//
// The paper uses this generator for Figures 2, 5 and 6 and rows 1 of
// Table I.

#ifndef OCA_GEN_LFR_H_
#define OCA_GEN_LFR_H_

#include <cstdint>

#include "gen/planted_partition.h"  // BenchmarkGraph
#include "util/result.h"

namespace oca {

/// Parameters of the LFR benchmark. Defaults follow the LFR reference
/// implementation; figure-specific values are set by the bench harness.
///
/// Setting `overlapping_nodes` (the benchmark's "on" parameter) > 0
/// produces the OVERLAPPING variant (Lancichinetti & Fortunato 2009):
/// that many nodes belong to `overlap_memberships` ("om") communities
/// each, their internal degree split evenly across memberships. This is
/// an extension beyond the 2008 generator the paper used — it fills
/// exactly the gap the paper laments ("there exists no benchmark
/// allowing overlapping in the literature").
struct LfrOptions {
  size_t num_nodes = 1000;
  double average_degree = 20.0;
  uint32_t max_degree = 50;
  double mixing = 0.1;            // mu: fraction of external links per node
  double degree_exponent = 2.0;   // tau1
  double community_exponent = 1.0;  // tau2
  uint32_t min_community = 20;
  uint32_t max_community = 100;
  uint64_t seed = 42;

  /// Overlapping variant: number of nodes with multiple memberships (on).
  size_t overlapping_nodes = 0;
  /// Memberships per overlapping node (om >= 2 when on > 0).
  uint32_t overlap_memberships = 2;

  /// Passes of the external-edge rewiring loop before leftovers are
  /// erased. Higher = closer to the exact mu at more cost.
  size_t max_rewire_passes = 12;
};

/// Diagnostics reported alongside the generated graph.
struct LfrStats {
  double realized_mixing = 0.0;  // measured mu over the final graph
  size_t erased_external_edges = 0;
  size_t rewire_passes_used = 0;
};

/// Generates an LFR benchmark graph with ground-truth communities
/// (a partition when overlapping_nodes == 0, an overlapping cover
/// otherwise). Deterministic per options.seed.
Result<BenchmarkGraph> GenerateLfr(const LfrOptions& options,
                                   LfrStats* stats = nullptr);

/// Measures the realized mixing parameter of a graph against a
/// ground-truth cover: the fraction of edges whose endpoints share no
/// community. Defined for overlapping covers.
double MeasureMixing(const Graph& graph, const Cover& cover);

}  // namespace oca

#endif  // OCA_GEN_LFR_H_
