#include "gen/weight_assign.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/random.h"

namespace oca {

double HashedEdgeWeight(NodeId u, NodeId v,
                        const WeightAssignOptions& options) {
  if (options.scheme == WeightScheme::kUnit) return 1.0;
  if (u > v) std::swap(u, v);
  // One SplitMix64 round over (seed, u, v) packed into the state. The
  // golden-ratio offset keeps seed 0 from collapsing to a raw pair
  // hash; SplitMix64's finalizer is a full-avalanche mix, which is all
  // a weight assignment needs.
  uint64_t state = options.seed * 0x9E3779B97F4A7C15ull +
                   (static_cast<uint64_t>(u) << 32 | v);
  const uint64_t bits = SplitMix64(&state);
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return options.min_weight +
         unit * (options.max_weight - options.min_weight);
}

Result<Graph> AssignWeights(const Graph& graph,
                            const WeightAssignOptions& options) {
  if (options.scheme == WeightScheme::kUniformHash) {
    if (!std::isfinite(options.min_weight) ||
        !std::isfinite(options.max_weight) ||
        !(options.min_weight < options.max_weight) ||
        options.min_weight <= 0.0) {
      return Status::InvalidArgument(
          "weight range must satisfy 0 < min_weight < max_weight and be "
          "finite");
    }
  }
  auto offs = graph.offsets();
  auto nbrs = graph.neighbor_array();
  std::vector<uint64_t> offsets(offs.begin(), offs.end());
  std::vector<NodeId> neighbors(nbrs.begin(), nbrs.end());
  std::vector<double> weights(neighbors.size());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (uint64_t p = offsets[v]; p < offsets[v + 1]; ++p) {
      // Orientation-insensitive hash: both CSR directions of an edge
      // compute the identical double, so symmetry holds bitwise.
      weights[p] = HashedEdgeWeight(v, neighbors[p], options);
    }
  }
  return Graph(std::move(offsets), std::move(neighbors), std::move(weights),
               graph.original_ids());
}

}  // namespace oca
