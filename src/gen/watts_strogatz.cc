#include "gen/watts_strogatz.h"

#include <string>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace oca {

Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng* rng) {
  if (k % 2 != 0) {
    return Status::InvalidArgument("lattice degree k must be even");
  }
  if (k >= n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " must be below n=" + std::to_string(n));
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("rewiring beta must be in [0,1]");
  }

  // Canonical-edge set for duplicate checks during rewiring.
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  std::unordered_set<uint64_t> edges;
  edges.reserve(n * k / 2 * 2);

  // Ring lattice: node v connects to v+1 .. v+k/2 (mod n).
  for (NodeId v = 0; v < n; ++v) {
    for (size_t hop = 1; hop <= k / 2; ++hop) {
      NodeId u = static_cast<NodeId>((v + hop) % n);
      edges.insert(key(v, u));
    }
  }

  // Rewire pass: visit lattice edges in canonical construction order and
  // with probability beta replace (v, v+hop) by (v, random).
  for (NodeId v = 0; v < n; ++v) {
    for (size_t hop = 1; hop <= k / 2; ++hop) {
      NodeId u = static_cast<NodeId>((v + hop) % n);
      if (!rng->NextBool(beta)) continue;
      if (!edges.count(key(v, u))) continue;  // already rewired away
      // Bounded attempts to find a fresh endpoint.
      for (int attempt = 0; attempt < 32; ++attempt) {
        NodeId w = static_cast<NodeId>(rng->NextBounded(n));
        if (w == v || edges.count(key(v, w))) continue;
        edges.erase(key(v, u));
        edges.insert(key(v, w));
        break;
      }
    }
  }

  GraphBuilder builder(n);
  for (uint64_t packed : edges) {
    builder.AddEdge(static_cast<NodeId>(packed >> 32),
                    static_cast<NodeId>(packed & 0xFFFFFFFFu));
  }
  return builder.Build();
}

}  // namespace oca
