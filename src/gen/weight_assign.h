// Deterministic synthetic edge weights for tests and benchmarks.
//
// The weight of an edge is a pure function of (seed, u, v) — a
// SplitMix64 hash of the canonical endpoint pair, NOT a sequential RNG
// draw — so the assignment is independent of edge iteration order,
// build path (in-memory vs chunked file build), and backend. Every
// differential test in the weighted suite leans on this: the same
// (graph, seed) yields bitwise-identical weights no matter how the
// graph was materialized.
//
// Schemes:
//   kUnit        — every edge weighs exactly 1.0. The graph becomes
//                  weighted (is_weighted() true) but is semantically
//                  the unweighted graph; used to pin the all-ones
//                  equivalence invariant.
//   kUniformHash — uniform in [min_weight, max_weight), hashed per
//                  edge as above.

#ifndef OCA_GEN_WEIGHT_ASSIGN_H_
#define OCA_GEN_WEIGHT_ASSIGN_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

enum class WeightScheme {
  kUnit,
  kUniformHash,
};

struct WeightAssignOptions {
  WeightScheme scheme = WeightScheme::kUniformHash;
  uint64_t seed = 42;
  double min_weight = 0.5;   // inclusive
  double max_weight = 2.0;   // exclusive; must exceed min_weight
};

/// The weight AssignWeights gives edge {u, v} (orientation-insensitive).
/// Exposed so file-build pipelines can stamp the same weights edge by
/// edge without materializing the in-memory graph first.
double HashedEdgeWeight(NodeId u, NodeId v, const WeightAssignOptions& options);

/// Returns a weighted copy of `graph` (same topology, same original-id
/// mapping) with per-edge weights drawn by `options.scheme`. Errors if
/// the weight range is empty or non-finite.
Result<Graph> AssignWeights(const Graph& graph,
                            const WeightAssignOptions& options = {});

}  // namespace oca

#endif  // OCA_GEN_WEIGHT_ASSIGN_H_
