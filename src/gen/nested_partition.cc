#include "gen/nested_partition.h"

#include "graph/graph_builder.h"
#include "util/random.h"

namespace oca {

Result<NestedBenchmarkGraph> GenerateNestedPartition(
    const NestedPartitionOptions& options) {
  if (options.num_supers == 0 || options.subs_per_super == 0 ||
      options.nodes_per_sub == 0) {
    return Status::InvalidArgument("nested partition needs nonzero counts");
  }
  for (double p : {options.p_sub, options.p_super, options.p_out}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must be in [0,1]");
    }
  }
  if (options.p_sub < options.p_super || options.p_super < options.p_out) {
    return Status::InvalidArgument(
        "nesting requires p_sub >= p_super >= p_out");
  }

  const size_t num_subs = options.num_supers * options.subs_per_super;
  const size_t n = num_subs * options.nodes_per_sub;
  auto sub_of = [&](NodeId v) { return v / options.nodes_per_sub; };
  auto super_of = [&](NodeId v) {
    return sub_of(v) / options.subs_per_super;
  };

  Rng rng(options.seed);
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      double p = options.p_out;
      if (sub_of(u) == sub_of(v)) {
        p = options.p_sub;
      } else if (super_of(u) == super_of(v)) {
        p = options.p_super;
      }
      if (rng.NextBool(p)) builder.AddEdge(u, v);
    }
  }
  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());

  Cover sub_truth;
  for (size_t b = 0; b < num_subs; ++b) {
    Community c;
    for (size_t i = 0; i < options.nodes_per_sub; ++i) {
      c.push_back(static_cast<NodeId>(b * options.nodes_per_sub + i));
    }
    sub_truth.Add(std::move(c));
  }
  sub_truth.Canonicalize();

  Cover super_truth;
  const size_t super_size = options.subs_per_super * options.nodes_per_sub;
  for (size_t s = 0; s < options.num_supers; ++s) {
    Community c;
    for (size_t i = 0; i < super_size; ++i) {
      c.push_back(static_cast<NodeId>(s * super_size + i));
    }
    super_truth.Add(std::move(c));
  }
  super_truth.Canonicalize();

  return NestedBenchmarkGraph{std::move(graph), std::move(super_truth),
                              std::move(sub_truth)};
}

}  // namespace oca
