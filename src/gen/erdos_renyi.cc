#include "gen/erdos_renyi.h"

#include <string>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace oca {

Result<Graph> ErdosRenyi(size_t n, double p, Rng* rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0,1]");
  }
  GraphBuilder builder(n);
  if (n >= 2 && p > 0.0) {
    if (p >= 1.0) {
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
      }
    } else {
      // Geometric skip over the lexicographic pair stream (u < v).
      uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
      uint64_t idx = rng->NextGeometric(p);
      while (idx < total_pairs) {
        // Invert pair index -> (u, v): find u with cumulative count.
        // Solve u from idx using the triangular layout.
        uint64_t remaining = idx;
        NodeId u = 0;
        uint64_t row = n - 1;
        while (remaining >= row) {
          remaining -= row;
          ++u;
          --row;
        }
        NodeId v = static_cast<NodeId>(u + 1 + remaining);
        builder.AddEdge(u, v);
        idx += 1 + rng->NextGeometric(p);
      }
    }
  }
  return builder.Build();
}

Result<Graph> ErdosRenyiM(size_t n, size_t m, Rng* rng) {
  uint64_t total_pairs = n >= 2 ? static_cast<uint64_t>(n) * (n - 1) / 2 : 0;
  if (m > total_pairs) {
    return Status::InvalidArgument("m=" + std::to_string(m) +
                                   " exceeds the number of node pairs");
  }
  GraphBuilder builder(n);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (chosen.insert(key).second) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace oca
