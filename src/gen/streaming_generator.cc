#include "gen/streaming_generator.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gen/degree_sequence.h"
#include "io/edge_stream.h"
#include "io/graph_format.h"
#include "util/random.h"

namespace oca {

namespace {

// Result<T>-returning sibling of OCA_RETURN_IF_ERROR (which needs a
// Status return type): wraps a non-OK status into the Result.
#define OCA_RETURN_IF_ERROR_R(expr) \
  do {                              \
    ::oca::Status _s = (expr);      \
    if (!_s.ok()) return _s;        \
  } while (false)

// ---------------------------------------------------------------------
// Stage 1 helpers: graphicality.

/// Erdős–Gallai test for a nonincreasing degree sequence with even sum:
/// graphical iff for every k in [1, n],
///   sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k).
bool IsGraphical(const std::vector<uint32_t>& desc) {
  const size_t n = desc.size();
  std::vector<uint64_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + desc[i];
  if (prefix[n] % 2 != 0) return false;
  for (size_t k = 1; k <= n; ++k) {
    const uint64_t lhs = prefix[k];
    // First index (0-based) >= k whose degree is < k; entries before it
    // in the suffix contribute k each, the rest contribute d_i.
    const auto it = std::lower_bound(
        desc.begin() + static_cast<ptrdiff_t>(k), desc.end(), k,
        [](uint32_t d, size_t kk) { return d >= kk; });
    const size_t idx = static_cast<size_t>(it - desc.begin());
    const uint64_t rhs = static_cast<uint64_t>(k) * (k - 1) +
                         static_cast<uint64_t>(idx - k) * k +
                         (prefix[n] - prefix[idx]);
    if (lhs > rhs) return false;
    // Sufficient to check k up to the Durfee number m = max{i : d_i >= i}
    // (1-based); beyond it the inequality only slackens.
    if (k >= n || desc[k] < k + 1) break;
  }
  return true;
}

/// Lowers the largest degrees (2 units at a time, preserving parity and
/// descending order) until the sequence is graphical. Returns the total
/// units removed. Terminates: an all-<=1 sequence with even sum is a
/// perfect matching.
uint64_t RepairToGraphical(std::vector<uint32_t>* desc) {
  uint64_t removed = 0;
  while ((*desc)[0] >= 2 && !IsGraphical(*desc)) {
    (*desc)[0] -= 2;
    removed += 2;
    // Re-sink the head to keep the sequence nonincreasing.
    auto pos = std::upper_bound(desc->begin() + 1, desc->end(), (*desc)[0],
                                std::greater<uint32_t>());
    std::rotate(desc->begin(), desc->begin() + 1, pos);
  }
  return removed;
}

// ---------------------------------------------------------------------
// Stage 3 helpers: bounded-memory edge swaps.

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// pread-based adjacency oracle over an OCAG snapshot: O(log deg) tiny
/// reads per query, zero mapped or heap-resident edge state. This is
/// what keeps the swap stage's address-space footprint node-linear —
/// an mmap of the snapshot would re-introduce an O(m) mapping.
class FileAdjacency {
 public:
  ~FileAdjacency() { Close(); }

  Status Open(const std::string& path) {
    Close();
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return ErrnoError("cannot open adjacency snapshot", path);
    path_ = path;
    char header[kGraphFileHeaderBytes];
    OCA_RETURN_IF_ERROR(PReadAll(header, sizeof(header), 0));
    if (std::memcmp(header, kGraphFileMagic, 4) != 0) {
      return Status::Internal("adjacency snapshot '" + path +
                              "' has a bad magic");
    }
    std::memcpy(&n_, header + 8, 8);
    return Status::OK();
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  Result<bool> HasEdge(NodeId u, NodeId v) const {
    uint64_t range[2];
    OCA_RETURN_IF_ERROR_R(
        PReadAll(range, sizeof(range),
                 kGraphFileOffsetsStart + uint64_t{u} * sizeof(uint64_t)));
    uint64_t lo = range[0], hi = range[1];
    const uint64_t nbr_base = GraphFileNeighborsStart(n_);
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      NodeId w = 0;
      OCA_RETURN_IF_ERROR_R(
          PReadAll(&w, sizeof(w), nbr_base + mid * sizeof(NodeId)));
      if (w == v) return true;
      if (w < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return false;
  }

 private:
  Status PReadAll(void* buf, size_t len, uint64_t offset) const {
    char* p = static_cast<char*>(buf);
    while (len > 0) {
      ssize_t r = ::pread(fd_, p, len, static_cast<off_t>(offset));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("read from adjacency snapshot", path_);
      }
      if (r == 0) {
        return Status::IOError("adjacency snapshot '" + path_ +
                               "' truncated");
      }
      p += r;
      len -= static_cast<size_t>(r);
      offset += static_cast<uint64_t>(r);
    }
    return Status::OK();
  }

  int fd_ = -1;
  uint64_t n_ = 0;
  std::string path_;
};

uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (uint64_t{u} << 32) | v;
}

Status BuildSnapshot(uint64_t n, const std::string& edge_path,
                     const std::string& snapshot_path, size_t buffer_bytes) {
  EdgeFileSource source;
  OCA_RETURN_IF_ERROR(source.Open(edge_path));
  StreamBuildOptions opts;
  opts.buffer_bytes = buffer_bytes;
  auto built = BuildGraphFileFromEdges(n, source, snapshot_path, opts);
  return built.ok() ? Status::OK() : built.status();
}

Status PWriteAllFd(int fd, const void* data, size_t len, uint64_t offset,
                   const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t w = ::pwrite(fd, p, len, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write to edge file", path);
    }
    p += w;
    len -= static_cast<size_t>(w);
    offset += static_cast<uint64_t>(w);
  }
  return Status::OK();
}

Status PReadAllFd(int fd, void* buf, size_t len, uint64_t offset,
                  const std::string& path) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t r = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("read from edge file", path);
    }
    if (r == 0) return Status::IOError("edge file '" + path + "' truncated");
    p += r;
    len -= static_cast<size_t>(r);
    offset += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

/// In-place double-edge-swap randomization of the edge file. See the
/// header comment for the snapshot + bounded-delta scheme.
Status RandomizeEdges(const StreamingGeneratorOptions& options,
                      const std::string& edge_path, uint64_t num_edges,
                      const std::string& snapshot_path, Rng* rng,
                      StreamingGeneratorResult* stats) {
  const uint64_t target = static_cast<uint64_t>(
      std::llround(options.swaps_per_edge * static_cast<double>(num_edges)));
  if (target == 0 || num_edges < 2) return Status::OK();

  OCA_RETURN_IF_ERROR(BuildSnapshot(options.num_nodes, edge_path,
                                    snapshot_path, options.buffer_bytes));
  ++stats->swap_rounds;
  FileAdjacency adjacency;
  OCA_RETURN_IF_ERROR(adjacency.Open(snapshot_path));

  int fd = ::open(edge_path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open edge file", edge_path);

  // present-after-toggle map for edges modified since the last snapshot.
  std::unordered_map<uint64_t, bool> delta;
  delta.reserve(std::min<size_t>(options.max_swap_delta, 1u << 20));
  auto edge_present = [&](NodeId x, NodeId y) -> Result<bool> {
    const auto it = delta.find(EdgeKey(x, y));
    if (it != delta.end()) return it->second;
    return adjacency.HasEdge(std::min(x, y), std::max(x, y));
  };

  Status status = Status::OK();
  for (uint64_t attempt = 0; attempt < target; ++attempt) {
    ++stats->swap_attempts;
    if (delta.size() >= options.max_swap_delta) {
      adjacency.Close();
      status = BuildSnapshot(options.num_nodes, edge_path, snapshot_path,
                             options.buffer_bytes);
      if (!status.ok()) break;
      status = adjacency.Open(snapshot_path);
      if (!status.ok()) break;
      delta.clear();
      ++stats->swap_rounds;
    }

    const uint64_t i = rng->NextBounded(num_edges);
    const uint64_t j = rng->NextBounded(num_edges);
    if (i == j) continue;
    NodeId e1[2], e2[2];
    status = PReadAllFd(fd, e1, sizeof(e1), i * sizeof(Edge), edge_path);
    if (!status.ok()) break;
    status = PReadAllFd(fd, e2, sizeof(e2), j * sizeof(Edge), edge_path);
    if (!status.ok()) break;
    NodeId a = e1[0], b = e1[1], c = e2[0], d = e2[1];
    if ((rng->Next() & 1) != 0) std::swap(c, d);
    // Candidate rewiring (a,b),(c,d) -> (a,d),(c,b): all four endpoints
    // must be distinct (no loops, no degenerate swaps)...
    if (a == c || a == d || b == c || b == d) continue;
    // ...and neither new edge may already exist.
    auto ad = edge_present(a, d);
    if (!ad.ok()) {
      status = ad.status();
      break;
    }
    if (*ad) continue;
    auto cb = edge_present(c, b);
    if (!cb.ok()) {
      status = cb.status();
      break;
    }
    if (*cb) continue;

    delta[EdgeKey(a, b)] = false;
    delta[EdgeKey(c, d)] = false;
    delta[EdgeKey(a, d)] = true;
    delta[EdgeKey(c, b)] = true;
    const NodeId r1[2] = {std::min(a, d), std::max(a, d)};
    const NodeId r2[2] = {std::min(c, b), std::max(c, b)};
    status = PWriteAllFd(fd, r1, sizeof(r1), i * sizeof(Edge), edge_path);
    if (!status.ok()) break;
    status = PWriteAllFd(fd, r2, sizeof(r2), j * sizeof(Edge), edge_path);
    if (!status.ok()) break;
    ++stats->swaps_applied;
  }
  adjacency.Close();
  if (::close(fd) != 0 && status.ok()) {
    status = ErrnoError("close of edge file", edge_path);
  }
  return status;
}

}  // namespace

Result<StreamingGeneratorResult> GenerateGraphToFile(
    const StreamingGeneratorOptions& options,
    const std::string& output_prefix) {
  if (options.num_nodes < 2) {
    return Status::InvalidArgument(
        "streaming generator needs at least 2 nodes, got " +
        std::to_string(options.num_nodes));
  }
  if (options.min_degree == 0) {
    return Status::InvalidArgument("min_degree must be >= 1");
  }
  if (!(options.gamma > 0.0)) {
    return Status::InvalidArgument("gamma must be positive");
  }
  if (options.swaps_per_edge < 0.0) {
    return Status::InvalidArgument("swaps_per_edge must be >= 0");
  }
  const uint64_t n = options.num_nodes;
  uint64_t max_degree = options.max_degree;
  if (max_degree == 0) {
    max_degree = std::max<uint64_t>(
        options.min_degree,
        static_cast<uint64_t>(std::sqrt(static_cast<double>(n))));
  }
  max_degree = std::min(max_degree, n - 1);
  const uint64_t min_degree = std::min(options.min_degree, max_degree);

  StreamingGeneratorResult result;
  result.num_nodes = n;
  result.degree_path = output_prefix + ".degrees";
  result.edge_path = output_prefix + ".edges";
  result.graph_path = output_prefix + ".ocag";
  const std::string snapshot_path = output_prefix + ".lookup";

  Rng rng(options.seed);

  // ---- Stage 1: requested degree sequence, descending, graphical.
  std::vector<uint32_t> degrees = SamplePowerLawSequence(
      static_cast<size_t>(n), min_degree, max_degree, options.gamma, &rng);
  std::sort(degrees.begin(), degrees.end(), std::greater<uint32_t>());
  uint64_t sum = 0;
  for (uint32_t d : degrees) sum += d;
  if (sum % 2 != 0) {
    // SamplePowerLawSequence bumps an entry for parity but cannot when
    // every entry sits at max; shed one unit from the head instead.
    --degrees[0];
    ++result.degree_repairs;
  }
  result.degree_repairs += RepairToGraphical(&degrees);
  {
    std::FILE* f = std::fopen(result.degree_path.c_str(), "wb");
    if (f == nullptr) {
      return ErrnoError("cannot create degree file", result.degree_path);
    }
    const bool wrote =
        degrees.empty() ||
        std::fwrite(degrees.data(), sizeof(uint32_t), degrees.size(), f) ==
            degrees.size();
    if (std::fclose(f) != 0 || !wrote) {
      return Status::IOError("write of degree file '" + result.degree_path +
                             "' failed");
    }
  }

  // ---- Stage 2: Havel–Hakimi materialization to the edge file.
  // Max-heap on (remaining degree, smaller node first); the head is
  // wired to the next-d_u largest — the textbook construction, made
  // deterministic by the tie order.
  {
    EdgeFileWriter writer;
    OCA_RETURN_IF_ERROR(writer.Open(result.edge_path));
    using Entry = std::pair<uint32_t, uint32_t>;  // (remaining degree, node)
    struct Less {
      bool operator()(const Entry& a, const Entry& b) const {
        if (a.first != b.first) return a.first < b.first;
        return a.second > b.second;
      }
    };
    std::priority_queue<Entry, std::vector<Entry>, Less> heap;
    for (uint64_t v = 0; v < n; ++v) {
      if (degrees[v] > 0) heap.emplace(degrees[v], static_cast<uint32_t>(v));
    }
    std::vector<Entry> partners;
    while (!heap.empty()) {
      const auto [du, u] = heap.top();
      heap.pop();
      partners.clear();
      for (uint32_t t = 0; t < du; ++t) {
        if (heap.empty()) {
          return Status::Internal(
              "Havel-Hakimi ran out of partners; the degree sequence "
              "escaped the Erdos-Gallai repair");
        }
        auto [dw, w] = heap.top();
        heap.pop();
        OCA_RETURN_IF_ERROR(writer.Append(u, w));
        if (dw > 1) partners.emplace_back(dw - 1, w);
      }
      for (const Entry& p : partners) heap.push(p);
    }
    OCA_RETURN_IF_ERROR(writer.Close());
    result.num_edges = writer.edges_written();
  }

  // ---- Stage 3: in-place double-edge-swap randomization.
  OCA_RETURN_IF_ERROR(RandomizeEdges(options, result.edge_path,
                                     result.num_edges, snapshot_path, &rng,
                                     &result));

  // ---- Stage 4: final CSR graph file through the chunked builder.
  {
    EdgeFileSource source;
    OCA_RETURN_IF_ERROR(source.Open(result.edge_path));
    StreamBuildOptions build_opts;
    build_opts.buffer_bytes = options.buffer_bytes;
    auto built = BuildGraphFileFromEdges(n, source, result.graph_path,
                                         build_opts);
    if (!built.ok()) return built.status();
    result.final_build = *built;
    if (result.final_build.num_edges != result.num_edges) {
      return Status::Internal(
          "edge-swap stage changed the edge count: " +
          std::to_string(result.num_edges) + " -> " +
          std::to_string(result.final_build.num_edges) +
          " (a swap must have created a duplicate)");
    }
  }

  std::remove(snapshot_path.c_str());
  if (!options.keep_intermediates) {
    std::remove(result.degree_path.c_str());
    std::remove(result.edge_path.c_str());
  }
  return result;
}

}  // namespace oca
