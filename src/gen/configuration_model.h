// Configuration-model wiring: realize a degree sequence as a simple
// graph via stub matching with edge-swap repair (erased fallback).

#ifndef OCA_GEN_CONFIGURATION_MODEL_H_
#define OCA_GEN_CONFIGURATION_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Diagnostics of a configuration-model run.
struct ConfigurationModelStats {
  size_t requested_edges = 0;  // sum(degrees)/2
  size_t realized_edges = 0;   // edges in the returned simple graph
  size_t repair_swaps = 0;     // successful conflict-resolving swaps
  size_t erased_edges = 0;     // conflicts left unresolved and dropped
};

/// Generates a simple undirected graph whose degree sequence approximates
/// `degrees` (exact when repair succeeds; otherwise a few stubs are
/// erased). Sum of degrees must be even. O(m) expected.
Result<Graph> ConfigurationModel(const std::vector<uint32_t>& degrees,
                                 Rng* rng,
                                 ConfigurationModelStats* stats = nullptr);

/// As above but emits an edge list (useful when the caller wants to remap
/// node ids, as the LFR intra-community wiring does).
Result<std::vector<Edge>> ConfigurationModelEdges(
    const std::vector<uint32_t>& degrees, Rng* rng,
    ConfigurationModelStats* stats = nullptr);

}  // namespace oca

#endif  // OCA_GEN_CONFIGURATION_MODEL_H_
