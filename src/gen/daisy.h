// Daisy and daisy-tree benchmark graphs (paper Section V).
//
// A daisy with parameters (p, q, n, alpha, beta) has vertices {0..n-1}:
//   - petal i, 1 <= i <= p-1: vertices with index = i (mod p);
//   - core: vertices with index = 0 (mod p) or = 0 (mod q).
// A vertex with v != 0 (mod p) and v = 0 (mod q) lies in BOTH a petal and
// the core — this is what makes the ground truth overlapping. Petal edges
// appear with probability alpha, core edges with probability beta.
//
// A daisy tree with parameters (k, gamma) grows from one daisy by k times
// attaching a fresh daisy to a random existing one: pick a random petal
// on each side and add edges between the two petals with probability
// gamma.
//
// These are the workloads of Figures 3 and 4 and row 2 of Table I.

#ifndef OCA_GEN_DAISY_H_
#define OCA_GEN_DAISY_H_

#include <cstdint>

#include "gen/planted_partition.h"  // BenchmarkGraph
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Parameters of a single daisy flower.
struct DaisyOptions {
  uint32_t p = 8;       // petals + 1 (petal count is p-1)
  uint32_t q = 5;       // core secondary modulus
  uint32_t n = 120;     // vertices per daisy
  double alpha = 0.8;   // petal edge probability
  double beta = 0.8;    // core edge probability
};

/// Parameters of a daisy tree.
struct DaisyTreeOptions {
  DaisyOptions daisy;
  uint32_t extra_daisies = 8;  // k: attachments after the initial daisy
  double gamma = 0.05;         // inter-petal join probability
  uint64_t seed = 42;
};

/// Generates one daisy with its overlapping ground truth (p-1 petals plus
/// the core). Requires p >= 2, q >= 2, n >= p.
Result<BenchmarkGraph> GenerateDaisy(const DaisyOptions& options, Rng* rng);

/// Generates a daisy tree; ground truth is the union of every daisy's
/// petals and cores. Join edges between petals of different daisies are
/// inter-community noise, as in the paper.
Result<BenchmarkGraph> GenerateDaisyTree(const DaisyTreeOptions& options);

}  // namespace oca

#endif  // OCA_GEN_DAISY_H_
