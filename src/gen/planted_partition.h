// Planted-partition (stochastic block model with two probabilities)
// benchmark graphs with known ground truth.

#ifndef OCA_GEN_PLANTED_PARTITION_H_
#define OCA_GEN_PLANTED_PARTITION_H_

#include "core/cover.h"
#include "graph/graph.h"
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// A generated benchmark graph with its ground-truth community structure.
struct BenchmarkGraph {
  Graph graph;
  Cover ground_truth;
};

/// `num_groups` equal-sized groups over n nodes (n divisible adjustment:
/// earlier groups get the remainder); intra-group edges with probability
/// p_in, inter-group with p_out.
Result<BenchmarkGraph> PlantedPartition(size_t n, size_t num_groups,
                                        double p_in, double p_out, Rng* rng);

}  // namespace oca

#endif  // OCA_GEN_PLANTED_PARTITION_H_
