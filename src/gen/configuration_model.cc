#include "gen/configuration_model.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace oca {

namespace {

// Hash for canonical edges, used to detect duplicates during repair.
struct EdgeHash {
  size_t operator()(const Edge& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(e.first) << 32) |
                                 e.second);
  }
};

inline Edge Canon(NodeId u, NodeId v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

}  // namespace

Result<std::vector<Edge>> ConfigurationModelEdges(
    const std::vector<uint32_t>& degrees, Rng* rng,
    ConfigurationModelStats* stats) {
  uint64_t stub_count = 0;
  for (uint32_t d : degrees) stub_count += d;
  if (stub_count % 2 != 0) {
    return Status::InvalidArgument("degree sum must be even");
  }

  // Lay out stubs and shuffle; consecutive pairs become candidate edges.
  std::vector<NodeId> stubs;
  stubs.reserve(stub_count);
  for (NodeId v = 0; v < degrees.size(); ++v) {
    for (uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  rng->Shuffle(&stubs);

  std::vector<Edge> edges;
  edges.reserve(stub_count / 2);
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(stub_count);
  std::vector<Edge> conflicts;
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId u = stubs[i], v = stubs[i + 1];
    Edge e = Canon(u, v);
    if (u == v || !seen.insert(e).second) {
      conflicts.push_back({u, v});  // keep original orientation for repair
    } else {
      edges.push_back(e);
    }
  }

  ConfigurationModelStats local;
  local.requested_edges = stub_count / 2;

  // Repair: for each conflicting pair (u, v), pick a random accepted edge
  // (a, b) and try the swap {u,a}, {v,b}. Bounded retries, then erase.
  const size_t kMaxAttemptsPerConflict = 64;
  for (const auto& [u, v] : conflicts) {
    bool repaired = false;
    if (!edges.empty()) {
      for (size_t attempt = 0; attempt < kMaxAttemptsPerConflict; ++attempt) {
        size_t j = static_cast<size_t>(rng->NextBounded(edges.size()));
        auto [a, b] = edges[j];
        // Two possible rewirings; try both orientations.
        for (int orient = 0; orient < 2; ++orient) {
          NodeId x = orient == 0 ? a : b;
          NodeId y = orient == 0 ? b : a;
          Edge e1 = Canon(u, x), e2 = Canon(v, y);
          if (u == x || v == y || e1 == e2) continue;
          if (seen.count(e1) || seen.count(e2)) continue;
          // Commit: replace edges[j] with e1, append e2.
          seen.erase(Canon(a, b));
          seen.insert(e1);
          seen.insert(e2);
          edges[j] = e1;
          edges.push_back(e2);
          ++local.repair_swaps;
          repaired = true;
          break;
        }
        if (repaired) break;
      }
    }
    if (!repaired) ++local.erased_edges;
  }

  local.realized_edges = edges.size();
  if (stats != nullptr) *stats = local;
  return edges;
}

Result<Graph> ConfigurationModel(const std::vector<uint32_t>& degrees,
                                 Rng* rng, ConfigurationModelStats* stats) {
  OCA_ASSIGN_OR_RETURN(std::vector<Edge> edges,
                       ConfigurationModelEdges(degrees, rng, stats));
  return BuildGraph(degrees.size(), edges);
}

}  // namespace oca
