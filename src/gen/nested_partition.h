// Nested planted-partition benchmark graphs: a two-level stochastic
// block model with ground truth at BOTH scales. Super-communities are
// made of dense sub-blocks; sub-blocks inside a super are linked more
// densely than nodes across supers. The workload the recursive
// hierarchy (core/recursive_hierarchy.h) is built for: a flat run finds
// one scale, the recursive run should find supers at the top level and
// sub-blocks inside them.

#ifndef OCA_GEN_NESTED_PARTITION_H_
#define OCA_GEN_NESTED_PARTITION_H_

#include <cstdint>

#include "core/cover.h"
#include "graph/graph.h"
#include "util/result.h"

namespace oca {

struct NestedPartitionOptions {
  size_t num_supers = 4;       // super-communities
  size_t subs_per_super = 3;   // dense sub-blocks per super
  size_t nodes_per_sub = 16;   // nodes per sub-block
  double p_sub = 0.6;    // edge probability within a sub-block
  double p_super = 0.1;  // within a super, across its sub-blocks
  double p_out = 0.005;  // across supers
  uint64_t seed = 1;
};

/// A generated two-level benchmark graph with ground truth at each scale.
/// Node layout is contiguous: sub-block b spans
/// [b * nodes_per_sub, (b+1) * nodes_per_sub), and super s owns
/// sub-blocks [s * subs_per_super, (s+1) * subs_per_super).
struct NestedBenchmarkGraph {
  Graph graph;
  Cover super_truth;  // coarse scale: one community per super
  Cover sub_truth;    // fine scale: one community per sub-block
};

/// Generates the nested model. Errors on zero counts, probabilities
/// outside [0, 1], or a density ordering that inverts the nesting
/// (requires p_sub >= p_super >= p_out).
Result<NestedBenchmarkGraph> GenerateNestedPartition(
    const NestedPartitionOptions& options);

}  // namespace oca

#endif  // OCA_GEN_NESTED_PARTITION_H_
