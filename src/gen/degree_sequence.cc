#include "gen/degree_sequence.h"

#include <cmath>
#include <string>

namespace oca {

double PowerLawMean(uint64_t min, uint64_t max, double gamma) {
  double num = 0.0, den = 0.0;
  for (uint64_t k = min; k <= max; ++k) {
    double w = std::pow(static_cast<double>(k), -gamma);
    num += static_cast<double>(k) * w;
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

Result<uint64_t> SolveMinDegree(double target_mean, uint64_t max,
                                double gamma) {
  if (target_mean > static_cast<double>(max)) {
    return Status::InvalidArgument(
        "target mean degree " + std::to_string(target_mean) +
        " exceeds max degree " + std::to_string(max));
  }
  // Mean is monotone increasing in `min`; scan (max is a few hundred in
  // all our workloads, so a linear scan is fine and exact).
  for (uint64_t min = 1; min <= max; ++min) {
    if (PowerLawMean(min, max, gamma) >= target_mean) {
      return min;
    }
  }
  return max;
}

std::vector<uint32_t> SamplePowerLawSequence(size_t n, uint64_t min,
                                             uint64_t max, double gamma,
                                             Rng* rng) {
  std::vector<uint32_t> seq(n);
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    seq[i] = static_cast<uint32_t>(rng->NextPowerLaw(min, max, gamma));
    sum += seq[i];
  }
  if (sum % 2 == 1 && n > 0) {
    // Bump a non-maximal entry to make the stub count even.
    for (auto& d : seq) {
      if (d < max) {
        ++d;
        break;
      }
    }
  }
  return seq;
}

Result<std::vector<uint32_t>> SampleCommunitySizes(size_t total,
                                                   uint32_t min_size,
                                                   uint32_t max_size,
                                                   double gamma, Rng* rng) {
  if (min_size == 0 || min_size > max_size) {
    return Status::InvalidArgument("invalid community size bounds");
  }
  if (total < min_size) {
    return Status::InvalidArgument(
        "total nodes smaller than the minimum community size");
  }
  std::vector<uint32_t> sizes;
  size_t assigned = 0;
  while (assigned < total) {
    size_t remaining = total - assigned;
    if (remaining <= max_size) {
      if (remaining >= min_size) {
        sizes.push_back(static_cast<uint32_t>(remaining));
        assigned = total;
      } else {
        // Remainder too small to be its own community: spread it over
        // existing communities without exceeding max_size.
        size_t deficit = remaining;
        for (auto& s : sizes) {
          while (deficit > 0 && s < max_size) {
            ++s;
            --deficit;
          }
        }
        if (deficit > 0) {
          // All communities at max size; grow the last one beyond the cap
          // rather than failing (documented deviation, affects at most one
          // community by < min_size nodes).
          sizes.back() += static_cast<uint32_t>(deficit);
        }
        assigned = total;
      }
    } else {
      uint32_t s = static_cast<uint32_t>(
          rng->NextPowerLaw(min_size, max_size, gamma));
      sizes.push_back(s);
      assigned += s;
    }
  }
  return sizes;
}

}  // namespace oca
