// Watts–Strogatz small-world graphs: ring lattice with random rewiring.
// Completes the classic-generator set; useful as a high-clustering,
// no-community null model for testing community detectors.

#ifndef OCA_GEN_WATTS_STROGATZ_H_
#define OCA_GEN_WATTS_STROGATZ_H_

#include "graph/graph.h"
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Ring of n nodes, each joined to its k nearest neighbors (k even),
/// then every edge's far endpoint rewired with probability beta to a
/// uniform random node (avoiding self-loops and duplicates; a rewire
/// with no valid target keeps the original edge). beta=0 is the pure
/// lattice, beta=1 approaches G(n, k/n).
Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng* rng);

}  // namespace oca

#endif  // OCA_GEN_WATTS_STROGATZ_H_
