#include "gen/planted_partition.h"

#include "graph/graph_builder.h"

namespace oca {

Result<BenchmarkGraph> PlantedPartition(size_t n, size_t num_groups,
                                        double p_in, double p_out, Rng* rng) {
  if (num_groups == 0 || num_groups > n) {
    return Status::InvalidArgument("num_groups must be in [1, n]");
  }
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }

  // Node v belongs to group v % num_groups (contiguous blocks would also
  // work; modulo keeps group sizes within 1 of each other).
  auto group_of = [num_groups](NodeId v) { return v % num_groups; };

  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      double p = group_of(u) == group_of(v) ? p_in : p_out;
      if (rng->NextBool(p)) builder.AddEdge(u, v);
    }
  }
  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());

  Cover truth;
  for (size_t g = 0; g < num_groups; ++g) {
    Community c;
    for (NodeId v = static_cast<NodeId>(g); v < n;
         v += static_cast<NodeId>(num_groups)) {
      c.push_back(v);
    }
    truth.Add(std::move(c));
  }
  truth.Canonicalize();
  return BenchmarkGraph{std::move(graph), std::move(truth)};
}

}  // namespace oca
