// Out-of-core graph generation: the extmem-lfr-style staged pipeline
// (powerlaw degree sequence → Havel–Hakimi materialization → edge-swap
// randomization), every stage reading from and writing to disk so a
// million-node graph is generated end to end without the edge list ever
// living in RAM.
//
// Stages and their artifacts (all under one output prefix):
//   1. <prefix>.degrees  — the REQUESTED degree sequence, one u32 per
//      node, descending (node 0 is the biggest hub). Sampled from the
//      discrete power law P(k) ~ k^-gamma on {min_degree..max_degree},
//      sum forced even, then repaired to graphicality with the
//      Erdős–Gallai test (largest degrees lowered until the sequence is
//      realizable). This file is the contract the property tests hold
//      the later stages to: the final graph's degree sequence must
//      match it EXACTLY (Havel–Hakimi realizes it exactly; edge swaps
//      preserve degrees by construction).
//   2. <prefix>.edges    — simple loop-free edges realizing the
//      sequence (io/edge_stream.h format), from a deterministic
//      Havel–Hakimi materialization (max-remaining-degree first, ties
//      to the smaller node), then randomized IN PLACE by double-edge
//      swaps: (a,b),(c,d) → (a,d),(c,b) when all four endpoints are
//      distinct and neither new edge exists. Existence checks run
//      against an on-disk CSR snapshot via pread binary search plus a
//      bounded in-RAM delta of this round's toggles — when the delta
//      fills up, the snapshot is rebuilt from the edge file and the
//      delta cleared, so swap state is never edge-linear in RAM either.
//   3. <prefix>.ocag     — the final CSR graph file from the chunked
//      streaming builder (graph/graph_stream_build.h), ready for
//      OpenMmapGraph.
//
// Determinism: every stage is a pure function of (options, seed) — a
// fixed seed yields byte-identical degree, edge, and graph files across
// runs (pinned by tests/gen/streaming_generator_test.cc).
//
// Peak heap: O(num_nodes) (degree array, Havel–Hakimi heap) plus the
// stream-build buffer and the swap delta — never O(num_edges).

#ifndef OCA_GEN_STREAMING_GENERATOR_H_
#define OCA_GEN_STREAMING_GENERATOR_H_

#include <cstdint>
#include <string>

#include "graph/graph_stream_build.h"
#include "util/result.h"

namespace oca {

struct StreamingGeneratorOptions {
  uint64_t num_nodes = 100000;

  /// Power-law exponent gamma (P(k) ~ k^-gamma). Typical LFR: 2–3.
  double gamma = 2.5;

  /// Degree bounds. max_degree = 0 picks max(min_degree, floor(sqrt(n)))
  /// — the usual structural-cutoff default. Both are clamped to n - 1.
  uint64_t min_degree = 2;
  uint64_t max_degree = 0;

  /// Swap attempts per edge (the randomization budget). 0 disables the
  /// swap stage and leaves the raw Havel–Hakimi realization, which is
  /// deterministic but heavily degree-assortative.
  double swaps_per_edge = 1.0;

  uint64_t seed = 1;

  /// Stream-build gather-buffer bound (see StreamBuildOptions).
  size_t buffer_bytes = 8u << 20;

  /// Swap-delta bound: accepted-swap toggles kept in RAM before the
  /// on-disk adjacency snapshot is rebuilt. Each toggle is O(32) bytes;
  /// the default bounds the delta near 2 MiB.
  size_t max_swap_delta = 1u << 16;

  /// Remove the .degrees/.edges intermediates (and the internal lookup
  /// snapshot) once the final graph file is written.
  bool keep_intermediates = true;
};

struct StreamingGeneratorResult {
  std::string degree_path;
  std::string edge_path;
  std::string graph_path;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  /// Total degree units removed by the Erdős–Gallai repair (0 in the
  /// common case: the capped power law is almost always graphical).
  uint64_t degree_repairs = 0;
  uint64_t swap_attempts = 0;
  uint64_t swaps_applied = 0;
  /// Adjacency-snapshot rebuilds triggered by a full swap delta.
  uint64_t swap_rounds = 0;
  StreamBuildStats final_build;
};

/// Runs the full pipeline; artifact paths are `<output_prefix>.degrees`,
/// `.edges`, `.ocag`. Errors are typed Status via Result<T>.
Result<StreamingGeneratorResult> GenerateGraphToFile(
    const StreamingGeneratorOptions& options,
    const std::string& output_prefix);

}  // namespace oca

#endif  // OCA_GEN_STREAMING_GENERATOR_H_
