// Power-law degree-sequence sampling, the first stage of the LFR
// benchmark generator (Lancichinetti, Fortunato, Radicchi 2008).

#ifndef OCA_GEN_DEGREE_SEQUENCE_H_
#define OCA_GEN_DEGREE_SEQUENCE_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Expected value of the discrete power law P(k) ~ k^-gamma on
/// {min, ..., max}.
double PowerLawMean(uint64_t min, uint64_t max, double gamma);

/// Finds the smallest cutoff `min` such that the power law on {min..max}
/// with exponent gamma has mean >= target_mean. Errors when even
/// min == max cannot reach the target.
Result<uint64_t> SolveMinDegree(double target_mean, uint64_t max,
                                double gamma);

/// Samples `n` values from the power law on {min..max} with exponent
/// gamma. The sum is forced even (for stub pairing) by bumping one entry.
std::vector<uint32_t> SamplePowerLawSequence(size_t n, uint64_t min,
                                             uint64_t max, double gamma,
                                             Rng* rng);

/// Samples community sizes from a power law on {min_size..max_size} with
/// exponent gamma until they sum to exactly `total`: the final draw is
/// clamped, and if it would fall below min_size the deficit is spread over
/// existing communities. Errors on infeasible bounds.
Result<std::vector<uint32_t>> SampleCommunitySizes(size_t total,
                                                   uint32_t min_size,
                                                   uint32_t max_size,
                                                   double gamma, Rng* rng);

}  // namespace oca

#endif  // OCA_GEN_DEGREE_SEQUENCE_H_
