#include "gen/daisy.h"

#include <string>

#include "graph/graph_builder.h"

namespace oca {

namespace {

// Emits all intra-set edges of `nodes` with probability `prob` into the
// builder (offsets already applied by the caller).
void WireSet(const std::vector<NodeId>& nodes, double prob, Rng* rng,
             GraphBuilder* builder) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng->NextBool(prob)) builder->AddEdge(nodes[i], nodes[j]);
    }
  }
}

// Computes the petal/core node sets of a daisy whose vertices are
// {offset .. offset+n-1}; petal index i is 1..p-1.
struct DaisyLayout {
  std::vector<std::vector<NodeId>> petals;  // p-1 petals
  std::vector<NodeId> core;
};

DaisyLayout Layout(const DaisyOptions& opt, NodeId offset) {
  DaisyLayout layout;
  layout.petals.assign(opt.p - 1, {});
  for (uint32_t v = 0; v < opt.n; ++v) {
    NodeId id = offset + v;
    uint32_t mod_p = v % opt.p;
    bool in_core = (mod_p == 0) || (v % opt.q == 0);
    if (mod_p != 0) {
      layout.petals[mod_p - 1].push_back(id);
    }
    if (in_core) {
      layout.core.push_back(id);
    }
  }
  return layout;
}

Status ValidateDaisyOptions(const DaisyOptions& opt) {
  if (opt.p < 2) return Status::InvalidArgument("daisy requires p >= 2");
  if (opt.q < 2) return Status::InvalidArgument("daisy requires q >= 2");
  if (opt.n < opt.p) {
    return Status::InvalidArgument("daisy requires n >= p (got n=" +
                                   std::to_string(opt.n) + ", p=" +
                                   std::to_string(opt.p) + ")");
  }
  if (opt.alpha < 0 || opt.alpha > 1 || opt.beta < 0 || opt.beta > 1) {
    return Status::InvalidArgument("alpha and beta must be in [0,1]");
  }
  return Status::OK();
}

}  // namespace

Result<BenchmarkGraph> GenerateDaisy(const DaisyOptions& options, Rng* rng) {
  OCA_RETURN_IF_ERROR(ValidateDaisyOptions(options));
  GraphBuilder builder(options.n);
  DaisyLayout layout = Layout(options, 0);
  for (const auto& petal : layout.petals) {
    WireSet(petal, options.alpha, rng, &builder);
  }
  WireSet(layout.core, options.beta, rng, &builder);
  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());

  Cover truth;
  for (auto& petal : layout.petals) truth.Add(std::move(petal));
  truth.Add(std::move(layout.core));
  truth.Canonicalize();
  return BenchmarkGraph{std::move(graph), std::move(truth)};
}

Result<BenchmarkGraph> GenerateDaisyTree(const DaisyTreeOptions& options) {
  OCA_RETURN_IF_ERROR(ValidateDaisyOptions(options.daisy));
  if (options.gamma < 0 || options.gamma > 1) {
    return Status::InvalidArgument("gamma must be in [0,1]");
  }
  Rng rng(options.seed);
  const uint32_t per_daisy = options.daisy.n;
  const size_t num_daisies = static_cast<size_t>(options.extra_daisies) + 1;
  const size_t total_nodes = static_cast<size_t>(per_daisy) * num_daisies;

  GraphBuilder builder(total_nodes);
  std::vector<DaisyLayout> layouts;
  layouts.reserve(num_daisies);

  for (size_t d = 0; d < num_daisies; ++d) {
    NodeId offset = static_cast<NodeId>(d * per_daisy);
    DaisyLayout layout = Layout(options.daisy, offset);
    for (const auto& petal : layout.petals) {
      WireSet(petal, options.daisy.alpha, &rng, &builder);
    }
    WireSet(layout.core, options.daisy.beta, &rng, &builder);

    if (d > 0) {
      // Attach to a random previous daisy via a random petal pair.
      size_t target = static_cast<size_t>(rng.NextBounded(d));
      const auto& own_petal =
          layout.petals[rng.NextBounded(layout.petals.size())];
      const auto& other_petal = layouts[target].petals[rng.NextBounded(
          layouts[target].petals.size())];
      for (NodeId a : own_petal) {
        for (NodeId b : other_petal) {
          if (rng.NextBool(options.gamma)) builder.AddEdge(a, b);
        }
      }
    }
    layouts.push_back(std::move(layout));
  }

  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());
  Cover truth;
  for (auto& layout : layouts) {
    for (auto& petal : layout.petals) truth.Add(std::move(petal));
    truth.Add(std::move(layout.core));
  }
  truth.Canonicalize();
  return BenchmarkGraph{std::move(graph), std::move(truth)};
}

}  // namespace oca
