#include "gen/wikipedia_surrogate.h"

#include <algorithm>
#include <unordered_set>

#include "gen/barabasi_albert.h"
#include "graph/graph_builder.h"
#include "util/random.h"

namespace oca {

Result<BenchmarkGraph> GenerateWikipediaSurrogate(
    const WikipediaSurrogateOptions& options) {
  if (options.num_nodes < options.attachment_edges + 2) {
    return Status::InvalidArgument("surrogate too small for attachment m");
  }
  if (options.topic_min_size < 2 ||
      options.topic_min_size > options.topic_max_size) {
    return Status::InvalidArgument("invalid topic size bounds");
  }
  Rng rng(options.seed);

  // Backbone: preferential attachment.
  Rng backbone_rng = rng.Fork(1);
  OCA_ASSIGN_OR_RETURN(
      Graph backbone,
      BarabasiAlbert(options.num_nodes, options.attachment_edges,
                     &backbone_rng));

  GraphBuilder builder(options.num_nodes);
  builder.AddEdges(backbone.Edges());

  // Planted overlapping topics. Each topic draws most members fresh and
  // `topic_overlap` of them from previously used nodes, giving natural
  // multi-topic articles.
  Cover truth;
  std::vector<NodeId> used;  // nodes already in some topic
  Rng topic_rng = rng.Fork(2);
  for (size_t t = 0; t < options.num_topics; ++t) {
    uint32_t size = static_cast<uint32_t>(topic_rng.NextPowerLaw(
        options.topic_min_size, options.topic_max_size, 2.0));
    std::unordered_set<NodeId> members;
    size_t overlap_quota =
        used.empty() ? 0
                     : static_cast<size_t>(options.topic_overlap * size);
    while (members.size() < overlap_quota) {
      members.insert(used[topic_rng.NextBounded(used.size())]);
      if (members.size() >= size) break;
    }
    while (members.size() < size) {
      members.insert(
          static_cast<NodeId>(topic_rng.NextBounded(options.num_nodes)));
    }
    Community community(members.begin(), members.end());
    std::sort(community.begin(), community.end());
    // Densify the topic.
    for (size_t i = 0; i < community.size(); ++i) {
      for (size_t j = i + 1; j < community.size(); ++j) {
        if (topic_rng.NextBool(options.topic_density)) {
          builder.AddEdge(community[i], community[j]);
        }
      }
    }
    used.insert(used.end(), community.begin(), community.end());
    truth.Add(std::move(community));
  }
  truth.Canonicalize();

  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());
  return BenchmarkGraph{std::move(graph), std::move(truth)};
}

}  // namespace oca
