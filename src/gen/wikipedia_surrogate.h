// Wikipedia-surrogate generator.
//
// The paper's largest experiment runs OCA on the 2009 Wikipedia link
// graph (16,986,429 nodes / 176,454,501 edges). That dataset is not
// redistributable and far exceeds this environment, so we substitute a
// synthetic graph with the properties that matter for the experiment:
//   - heavy-tailed (preferential-attachment backbone, like article links);
//   - overlapping topical clusters planted on top (articles belong to
//     several topics), so community search has real structure to find;
//   - size parameterized, so the same binary scales from smoke-test to
//     as large as the machine allows.
// See DESIGN.md section 3 for the substitution rationale.

#ifndef OCA_GEN_WIKIPEDIA_SURROGATE_H_
#define OCA_GEN_WIKIPEDIA_SURROGATE_H_

#include <cstdint>

#include "gen/planted_partition.h"  // BenchmarkGraph
#include "util/result.h"

namespace oca {

/// Parameters of the surrogate.
struct WikipediaSurrogateOptions {
  size_t num_nodes = 100000;
  size_t attachment_edges = 5;   // preferential-attachment out-links
  size_t num_topics = 200;       // planted overlapping clusters
  uint32_t topic_min_size = 20;
  uint32_t topic_max_size = 400;
  double topic_density = 0.15;   // intra-topic edge probability
  double topic_overlap = 0.15;   // fraction of topic members shared
  uint64_t seed = 42;
};

/// Generates the surrogate graph; ground truth is the planted topics
/// (overlapping). The preferential-attachment backbone acts as the
/// unclustered "link noise" of real Wikipedia.
Result<BenchmarkGraph> GenerateWikipediaSurrogate(
    const WikipediaSurrogateOptions& options);

}  // namespace oca

#endif  // OCA_GEN_WIKIPEDIA_SURROGATE_H_
