// Erdős–Rényi G(n, p) random graphs in expected O(n + m) time.

#ifndef OCA_GEN_ERDOS_RENYI_H_
#define OCA_GEN_ERDOS_RENYI_H_

#include "graph/graph.h"
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Samples G(n, p) with geometric skipping (Batagelj & Brandes), so dense
/// iteration over all pairs is avoided for small p.
Result<Graph> ErdosRenyi(size_t n, double p, Rng* rng);

/// Samples G(n, m): exactly m distinct edges chosen uniformly.
Result<Graph> ErdosRenyiM(size_t n, size_t m, Rng* rng);

}  // namespace oca

#endif  // OCA_GEN_ERDOS_RENYI_H_
