#include "gen/barabasi_albert.h"

#include <string>
#include <unordered_set>

#include "graph/graph_builder.h"

namespace oca {

Result<Graph> BarabasiAlbert(size_t n, size_t edges_per_node, Rng* rng) {
  if (edges_per_node == 0) {
    return Status::InvalidArgument("edges_per_node must be positive");
  }
  size_t seed_nodes = edges_per_node + 1;
  if (n < seed_nodes) {
    return Status::InvalidArgument(
        "n=" + std::to_string(n) + " too small for m=" +
        std::to_string(edges_per_node) + " (need at least m+1 nodes)");
  }

  GraphBuilder builder(n);
  // Endpoint multiset: every edge contributes both endpoints, so sampling
  // a uniform entry is proportional to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * edges_per_node * n);

  // Seed clique.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<NodeId> targets;
  for (NodeId v = static_cast<NodeId>(seed_nodes); v < n; ++v) {
    targets.clear();
    while (targets.size() < edges_per_node) {
      NodeId t = endpoints[rng->NextBounded(endpoints.size())];
      targets.insert(t);
    }
    for (NodeId t : targets) {
      builder.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

}  // namespace oca
