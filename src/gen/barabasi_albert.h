// Barabási–Albert preferential attachment (scale-free) graphs.

#ifndef OCA_GEN_BARABASI_ALBERT_H_
#define OCA_GEN_BARABASI_ALBERT_H_

#include "graph/graph.h"
#include "util/random.h"
#include "util/result.h"

namespace oca {

/// Grows a scale-free graph: starts from a small clique of `edges_per_node
/// + 1` seed nodes, then each arriving node attaches to `edges_per_node`
/// distinct existing nodes chosen proportionally to degree (implemented
/// with the repeated-endpoint trick: sampling a uniform position in the
/// running edge-endpoint array is degree-proportional).
Result<Graph> BarabasiAlbert(size_t n, size_t edges_per_node, Rng* rng);

}  // namespace oca

#endif  // OCA_GEN_BARABASI_ALBERT_H_
