#include "io/snap.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace oca {

namespace {

struct RawEdge {
  NodeId u;
  NodeId v;
  double w;
};

}  // namespace

Result<SnapGraph> ReadSnapStream(std::istream& in, const SnapOptions& options) {
  std::unordered_map<uint64_t, NodeId> dense;
  std::vector<uint64_t> original_ids;
  std::vector<RawEdge> edges;
  SnapGraph out;

  auto intern = [&](uint64_t raw) -> NodeId {
    auto [it, inserted] =
        dense.try_emplace(raw, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    ++out.lines_total;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    double w = 1.0;
    if (ls >> w) {
      if (!std::isfinite(w) || w <= 0.0) {
        return Status::IOError("edge weight must be finite and > 0 at line " +
                               std::to_string(line_no));
      }
      out.weighted = true;
    } else if (!ls.eof()) {
      return Status::IOError("malformed weight at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    ++out.edges_listed;
    // Sequence the interning: function-argument evaluation order is
    // unspecified, and first-seen id assignment must follow text order.
    NodeId ua = intern(a);
    NodeId ub = intern(b);
    if (ua == ub) {
      ++out.self_loops_dropped;
      continue;
    }
    edges.push_back({ua, ub, w});
  }

  GraphBuilder builder(original_ids.size());
  if (!out.weighted) {
    for (const RawEdge& e : edges) builder.AddEdge(e.u, e.v);
  } else {
    // Canonicalise and pre-merge duplicates here (rather than in the
    // builder) so dedup_average can divide by the multiplicity. The
    // (u, v, w) sort matches GraphBuilder's own merge order, so the
    // summed weight is bit-identical either way.
    for (RawEdge& e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(edges.begin(), edges.end(),
              [](const RawEdge& a, const RawEdge& b) {
                if (a.u != b.u) return a.u < b.u;
                if (a.v != b.v) return a.v < b.v;
                return a.w < b.w;
              });
    for (size_t i = 0; i < edges.size();) {
      size_t j = i;
      double sum = 0.0;
      while (j < edges.size() && edges[j].u == edges[i].u &&
             edges[j].v == edges[i].v) {
        sum += edges[j].w;
        ++j;
      }
      const double mult = static_cast<double>(j - i);
      builder.AddEdge(edges[i].u, edges[i].v,
                      options.dedup_average ? sum / mult : sum);
      i = j;
    }
  }
  OCA_ASSIGN_OR_RETURN(out.graph, builder.Build());
  out.original_ids = std::move(original_ids);
  return out;
}

Result<SnapGraph> ReadSnapFile(const std::string& path,
                               const SnapOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadSnapStream(in, options);
}

}  // namespace oca
