#include "io/edge_stream.h"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

namespace oca {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

EdgeFileWriter::~EdgeFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EdgeFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("EdgeFileWriter already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return ErrnoError("cannot create edge file", path);
  path_ = path;
  edges_written_ = 0;
  return Status::OK();
}

Status EdgeFileWriter::Append(NodeId u, NodeId v) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EdgeFileWriter not open");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop " + std::to_string(u) +
                                   " in edge file '" + path_ + "'");
  }
  if (u > v) std::swap(u, v);
  const NodeId record[2] = {u, v};
  if (std::fwrite(record, sizeof(record), 1, file_) != 1) {
    return ErrnoError("write to edge file", path_);
  }
  ++edges_written_;
  return Status::OK();
}

Status EdgeFileWriter::Close() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EdgeFileWriter not open");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return ErrnoError("close of edge file", path_);
  return Status::OK();
}

EdgeFileSource::~EdgeFileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Status EdgeFileSource::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("EdgeFileSource already open");
  }
  OCA_ASSIGN_OR_RETURN(num_edges_, EdgeFileEdgeCount(path));
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return ErrnoError("cannot open edge file", path);
  path_ = path;
  return Status::OK();
}

Status EdgeFileSource::Rewind() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EdgeFileSource not open");
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return ErrnoError("seek in edge file", path_);
  }
  return Status::OK();
}

Result<size_t> EdgeFileSource::ReadBatch(std::span<Edge> out) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("EdgeFileSource not open");
  }
  static_assert(sizeof(Edge) == 2 * sizeof(NodeId),
                "Edge must be two packed u32s for raw record I/O");
  const size_t got =
      std::fread(out.data(), sizeof(Edge), out.size(), file_);
  if (got < out.size() && std::ferror(file_) != 0) {
    return ErrnoError("read from edge file", path_);
  }
  return got;
}

Result<uint64_t> EdgeFileEdgeCount(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoError("cannot stat edge file", path);
  }
  const uint64_t bytes = static_cast<uint64_t>(st.st_size);
  if (bytes % sizeof(Edge) != 0) {
    return Status::IOError("edge file '" + path + "' size " +
                           std::to_string(bytes) +
                           " is not a whole number of 8-byte records");
  }
  return bytes / sizeof(Edge);
}

namespace {

// One 16-byte weighted record. The layout is explicit (two u32s then a
// f64 at offset 8) so raw fwrite/fread round-trips across builds; the
// static_assert pins it against padding surprises.
struct WeightedRecord {
  NodeId u;
  NodeId v;
  double w;
};
static_assert(sizeof(WeightedRecord) == 16 &&
                  offsetof(WeightedRecord, w) == 8,
              "weighted edge record must be 16 packed bytes");

}  // namespace

WeightedEdgeFileWriter::~WeightedEdgeFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WeightedEdgeFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileWriter already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return ErrnoError("cannot create edge file", path);
  path_ = path;
  edges_written_ = 0;
  return Status::OK();
}

Status WeightedEdgeFileWriter::Append(NodeId u, NodeId v, double w) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileWriter not open");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop " + std::to_string(u) +
                                   " in edge file '" + path_ + "'");
  }
  if (!std::isfinite(w) || w <= 0.0) {
    return Status::InvalidArgument("edge weight must be finite and > 0 in '" +
                                   path_ + "'");
  }
  if (u > v) std::swap(u, v);
  const WeightedRecord record{u, v, w};
  if (std::fwrite(&record, sizeof(record), 1, file_) != 1) {
    return ErrnoError("write to edge file", path_);
  }
  ++edges_written_;
  return Status::OK();
}

Status WeightedEdgeFileWriter::Close() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileWriter not open");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return ErrnoError("close of edge file", path_);
  return Status::OK();
}

WeightedEdgeFileSource::~WeightedEdgeFileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WeightedEdgeFileSource::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileSource already open");
  }
  OCA_ASSIGN_OR_RETURN(num_edges_, WeightedEdgeFileEdgeCount(path));
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return ErrnoError("cannot open edge file", path);
  path_ = path;
  return Status::OK();
}

Status WeightedEdgeFileSource::Rewind() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileSource not open");
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return ErrnoError("seek in edge file", path_);
  }
  return Status::OK();
}

Result<size_t> WeightedEdgeFileSource::ReadBatch(std::span<Edge> out) {
  // Weight-oblivious callers still get the topology: read full records
  // and drop the weight column.
  std::vector<double> scratch(out.size());
  return ReadBatchWeighted(out, scratch);
}

Result<size_t> WeightedEdgeFileSource::ReadBatchWeighted(
    std::span<Edge> out, std::span<double> weights) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WeightedEdgeFileSource not open");
  }
  if (weights.size() != out.size()) {
    return Status::InvalidArgument(
        "ReadBatchWeighted spans must have equal sizes");
  }
  std::vector<WeightedRecord> records(out.size());
  const size_t got =
      std::fread(records.data(), sizeof(WeightedRecord), records.size(),
                 file_);
  if (got < records.size() && std::ferror(file_) != 0) {
    return ErrnoError("read from edge file", path_);
  }
  for (size_t i = 0; i < got; ++i) {
    out[i] = Edge(records[i].u, records[i].v);
    weights[i] = records[i].w;
  }
  return got;
}

Result<uint64_t> WeightedEdgeFileEdgeCount(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoError("cannot stat edge file", path);
  }
  const uint64_t bytes = static_cast<uint64_t>(st.st_size);
  if (bytes % sizeof(WeightedRecord) != 0) {
    return Status::IOError("edge file '" + path + "' size " +
                           std::to_string(bytes) +
                           " is not a whole number of 16-byte records");
  }
  return bytes / sizeof(WeightedRecord);
}

}  // namespace oca
