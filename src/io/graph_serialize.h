// Compact binary graph serialization for fast reload of generated
// benchmark graphs. Little-endian, versioned header.
//
// Layout: magic "OCAG" | u32 version | u64 n | u64 2m |
//         u64 offsets[n+1] | u32 neighbors[2m]

#ifndef OCA_IO_GRAPH_SERIALIZE_H_
#define OCA_IO_GRAPH_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

Status WriteGraphBinary(const Graph& graph, std::ostream& out);
Status WriteGraphBinaryFile(const Graph& graph, const std::string& path);

Result<Graph> ReadGraphBinary(std::istream& in);
Result<Graph> ReadGraphBinaryFile(const std::string& path);

}  // namespace oca

#endif  // OCA_IO_GRAPH_SERIALIZE_H_
