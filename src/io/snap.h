// SNAP dataset ingestion: the edge-list convention of the public SNAP
// collection (ego-Facebook, com-Amazon, ...), which is what the paper's
// Table 1 evaluates on.
//
//   - '#' (and '%') lines are comments, including the "Nodes: N
//     Edges: M" header hints (which count directed arcs in many
//     releases and so are not trusted)
//   - one edge per line: "<u> <v> [w]" — an optional third column is a
//     positive edge weight; lines without it default to 1.0
//   - node ids are sparse and are interned densely in first-appearance
//     order (same policy as edge_list.h)
//   - SNAP directed releases list both orientations of reciprocated
//     edges; GraphBuilder's canonicalisation collapses them, and on
//     weighted input duplicate weights SUM (GraphBuilder policy). Pass
//     SnapOptions::dedup_average to halve summed duplicates instead —
//     correct for symmetric directed dumps where both orientations
//     carry the same weight.
//
// The resulting graph is weighted iff at least one data line carried a
// third column; a fully two-column file takes the unweighted code path
// end to end, so SNAP ingestion composes with every digest pin.

#ifndef OCA_IO_SNAP_H_
#define OCA_IO_SNAP_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

struct SnapOptions {
  /// When a duplicate (u, v) pair appears k times, GraphBuilder sums the
  /// k weights. With this set, every edge weight is divided by its
  /// multiplicity after the merge — turning "both orientations listed"
  /// directed dumps into the intended symmetric weight. No effect on
  /// unweighted input.
  bool dedup_average = false;
};

/// A loaded SNAP graph plus provenance for reporting.
struct SnapGraph {
  Graph graph;
  std::vector<uint64_t> original_ids;  // dense id -> original id
  uint64_t lines_total = 0;            // all lines seen (incl. comments)
  uint64_t edges_listed = 0;           // data lines parsed
  uint64_t self_loops_dropped = 0;     // u == v lines (builder drops them)
  bool weighted = false;               // any line carried a weight column
};

/// Parses SNAP-style edge-list text from a stream.
Result<SnapGraph> ReadSnapStream(std::istream& in,
                                 const SnapOptions& options = {});

/// Loads a SNAP-style edge-list file.
Result<SnapGraph> ReadSnapFile(const std::string& path,
                               const SnapOptions& options = {});

}  // namespace oca

#endif  // OCA_IO_SNAP_H_
