// The OCAC on-disk community-store format, shared by the writer
// (io/community_serialize) and the mmap reader (core/community_store).
// It persists one immutable snapshot of a recursive community hierarchy
// (a flat cover is the depth-0 special case) so one expensive
// spectral/local-search build can answer many membership queries.
//
// Little-endian, versioned header, then fixed-layout sections. All
// counts live in the header, so every section start is computable
// before any section is touched — the same "offset index in the
// header" convention .ocag v1/v2 use (io/graph_format.h):
//
//   byte 0    magic "OCAC"
//   byte 4    u32 version (1)
//   byte 8    u64 n        — nodes of the source graph
//   byte 16   u64 m        — edges of the source graph
//   byte 24   u64 C        — communities (tree arena size)
//   byte 32   u64 R        — roots (top-level communities)
//   byte 40   u64 L        — levels (max depth + 1; 0 iff C == 0)
//   byte 48   u64 P        — membership paths over all nodes
//   byte 56   u64 M        — member entries (sum of community sizes)
//   byte 64   u64 K        — child entries; a tree ⟹ K == C − R
//   byte 72   u64 Q        — posting entries (node→root memberships)
//   byte 80   u64 E        — path entries (sum of path lengths)
//   byte 88   f64 coupling_constant (root solve)
//   byte 96   f64 lambda_min        (root solve)
//   byte 104  u64 tree_digest (RecursiveHierarchy::Digest at write time)
//   byte 112  sections
//
// Sections, in file order (starts below; u32 arrays are padded to the
// next 8-byte boundary so every u64/f64 section stays 8-aligned at any
// page-aligned mapping base):
//
//   records    C × CommunityRecord (56 bytes, see below)
//   roots      R × u32   — arena ids of the top-level communities
//   members    M × u32   — node ids, grouped per record
//   children   K × u32   — arena ids, grouped per record
//   postings   (n+1) × u64 offsets, then Q × u32 root arena ids:
//              CSR from node to the ROOT communities containing it
//   paths      (n+1) × u64 node offsets (node → its paths), then
//              (P+1) × u64 path offsets (path → its entries), then
//              E × u32 arena ids (root first, leaf last)
//   levels     L × LevelRecord (48 bytes) — per-depth rollups
//
// A valid file's size is exactly CommunityFileBytes(counts); anything
// shorter is truncated, anything longer is trailing garbage — both are
// typed errors on open, same contract as the graph format.

#ifndef OCA_IO_COMMUNITY_FORMAT_H_
#define OCA_IO_COMMUNITY_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace oca {

inline constexpr char kCommunityFileMagic[4] = {'O', 'C', 'A', 'C'};
inline constexpr uint32_t kCommunityFileVersion = 1;

/// Parent sentinel for root communities (mirrors
/// RecursiveHierarchy::kNoParent, truncated to the on-disk u32).
inline constexpr uint32_t kCommunityFileNoParent = 0xFFFFFFFFu;

/// Stop reasons as a closed on-disk enum; RecursiveCommunity carries
/// them as strings, the store round-trips through these codes.
enum class CommunityStopReason : uint32_t {
  kSplit = 0,          // interior node: recursion split it further
  kMinSize = 1,        // leaf: below recursion size floor
  kDensity = 2,        // leaf: too dense to split profitably
  kMaxDepth = 3,       // leaf: recursion depth cap
  kStable = 4,         // leaf: subgraph solve reproduced the community
  kNoCommunities = 5,  // leaf: subgraph solve found nothing
  kEdgeless = 6,       // leaf: subgraph has no internal edges
  kFlat = 7,           // root of a flat (non-recursive) cover snapshot
};
inline constexpr uint32_t kCommunityStopReasonCount = 8;

/// Name for an on-disk stop-reason code; "" when out of range.
constexpr std::string_view CommunityStopReasonName(uint32_t code) {
  constexpr std::string_view kNames[kCommunityStopReasonCount] = {
      "split",     "min_size",       "density",  "max_depth",
      "stable",    "no_communities", "edgeless", "flat"};
  return code < kCommunityStopReasonCount ? kNames[code] : std::string_view{};
}

/// Per-community fixed record. members/children index into the shared
/// member and child arrays; f64 fields are the subgraph solve's tuned
/// coupling constant and smallest Laplacian eigenvalue (0 when the
/// community was never solved, e.g. flat-cover roots).
struct CommunityRecord {
  uint64_t members_begin;
  uint64_t children_begin;
  uint32_t member_count;
  uint32_t child_count;
  uint32_t parent;  // arena id, kCommunityFileNoParent for roots
  uint32_t depth;
  uint32_t stop_reason;  // CommunityStopReason
  uint32_t reserved;     // zero on write, ignored on read
  double subgraph_c;
  double subgraph_lambda_min;
};
static_assert(sizeof(CommunityRecord) == 56 &&
                  std::is_standard_layout_v<CommunityRecord> &&
                  std::is_trivially_copyable_v<CommunityRecord>,
              "CommunityRecord is the on-disk layout; no implicit padding");

/// Per-depth rollup, the on-disk mirror of RecursiveLevelSummary.
struct CommunityLevelRecord {
  uint64_t depth;  // == its index in the section
  uint64_t communities;
  uint64_t split;
  uint64_t subgraph_solves;
  uint64_t warm_started;
  uint64_t spectral_iterations;
};
static_assert(sizeof(CommunityLevelRecord) == 48 &&
                  std::is_trivially_copyable_v<CommunityLevelRecord>,
              "CommunityLevelRecord is the on-disk layout");

/// The header counts as one bundle; section starts are pure functions
/// of these so readers can bounds-check before touching any section.
struct CommunityFileCounts {
  uint64_t num_nodes = 0;        // n
  uint64_t num_edges = 0;        // m
  uint64_t communities = 0;      // C
  uint64_t roots = 0;            // R
  uint64_t levels = 0;           // L
  uint64_t paths = 0;            // P
  uint64_t member_entries = 0;   // M
  uint64_t child_entries = 0;    // K
  uint64_t posting_entries = 0;  // Q
  uint64_t path_entries = 0;     // E
};

/// Fixed header size: magic + version + 10 counts + 2 f64 + digest.
inline constexpr uint64_t kCommunityFileHeaderBytes = 112;

inline constexpr uint64_t CommunityFileAlign8(uint64_t x) {
  return (x + 7) & ~uint64_t{7};
}

inline constexpr uint64_t CommunityFileRecordsStart() {
  return kCommunityFileHeaderBytes;
}
inline constexpr uint64_t CommunityFileRootsStart(
    const CommunityFileCounts& c) {
  return CommunityFileRecordsStart() + c.communities * sizeof(CommunityRecord);
}
inline constexpr uint64_t CommunityFileMembersStart(
    const CommunityFileCounts& c) {
  return CommunityFileAlign8(CommunityFileRootsStart(c) +
                             c.roots * sizeof(uint32_t));
}
inline constexpr uint64_t CommunityFileChildrenStart(
    const CommunityFileCounts& c) {
  return CommunityFileAlign8(CommunityFileMembersStart(c) +
                             c.member_entries * sizeof(uint32_t));
}
inline constexpr uint64_t CommunityFilePostingOffsetsStart(
    const CommunityFileCounts& c) {
  return CommunityFileAlign8(CommunityFileChildrenStart(c) +
                             c.child_entries * sizeof(uint32_t));
}
inline constexpr uint64_t CommunityFilePostingsStart(
    const CommunityFileCounts& c) {
  return CommunityFilePostingOffsetsStart(c) +
         (c.num_nodes + 1) * sizeof(uint64_t);
}
inline constexpr uint64_t CommunityFilePathNodeOffsetsStart(
    const CommunityFileCounts& c) {
  return CommunityFileAlign8(CommunityFilePostingsStart(c) +
                             c.posting_entries * sizeof(uint32_t));
}
inline constexpr uint64_t CommunityFilePathOffsetsStart(
    const CommunityFileCounts& c) {
  return CommunityFilePathNodeOffsetsStart(c) +
         (c.num_nodes + 1) * sizeof(uint64_t);
}
inline constexpr uint64_t CommunityFilePathEntriesStart(
    const CommunityFileCounts& c) {
  return CommunityFilePathOffsetsStart(c) + (c.paths + 1) * sizeof(uint64_t);
}
inline constexpr uint64_t CommunityFileLevelsStart(
    const CommunityFileCounts& c) {
  return CommunityFileAlign8(CommunityFilePathEntriesStart(c) +
                             c.path_entries * sizeof(uint32_t));
}

/// Exact size of a well-formed file with these counts.
inline constexpr uint64_t CommunityFileBytes(const CommunityFileCounts& c) {
  return CommunityFileLevelsStart(c) +
         c.levels * sizeof(CommunityLevelRecord);
}

}  // namespace oca

#endif  // OCA_IO_COMMUNITY_FORMAT_H_
