// METIS graph format I/O (unweighted variant).
//
// Header line: "<n> <m>" (optionally a format code we require to be 0 or
// absent); line i (1-based) lists the 1-based neighbor ids of node i.
// '%' lines are comments. The format stores each edge twice; we validate
// symmetry on read. This is the input format of METIS/hMETIS/KaHIP and
// of many community-detection tool chains.

#ifndef OCA_IO_METIS_H_
#define OCA_IO_METIS_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

Result<Graph> ReadMetisStream(std::istream& in);
Result<Graph> ReadMetisFile(const std::string& path);

Status WriteMetisStream(const Graph& graph, std::ostream& out);
Status WriteMetisFile(const Graph& graph, const std::string& path);

}  // namespace oca

#endif  // OCA_IO_METIS_H_
