// METIS graph format I/O.
//
// Header line: "<n> <m> [fmt [ncon]]"; line i (1-based) lists the
// 1-based neighbor ids of node i. '%' lines are comments. The format
// stores each edge twice; we validate symmetry on read.
//
// The optional fmt code is three decimal digits "abc" (leading zeros
// elided by most writers): a = vertex sizes, b = vertex weights,
// c = edge weights. Supported codes: 0 (plain), 1/"001" (edge
// weights — neighbors interleaved with weights), 10/"010" and
// 11/"011" (vertex weights present; each adjacency line starts with
// ncon weight tokens, which we parse and DISCARD — OCA has no vertex
// weight concept). Vertex sizes (a = 1) are rejected. Edge weights
// must be finite and positive; duplicate edges follow GraphBuilder's
// sum-merge policy.
//
// WriteMetis* emits fmt 001 with interleaved weights (printed with
// round-trip precision) when the graph is weighted, and the historical
// byte-identical unweighted form otherwise. This is the input format
// of METIS/hMETIS/KaHIP and of many community-detection tool chains.

#ifndef OCA_IO_METIS_H_
#define OCA_IO_METIS_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

Result<Graph> ReadMetisStream(std::istream& in);
Result<Graph> ReadMetisFile(const std::string& path);

Status WriteMetisStream(const Graph& graph, std::ostream& out);
Status WriteMetisFile(const Graph& graph, const std::string& path);

}  // namespace oca

#endif  // OCA_IO_METIS_H_
