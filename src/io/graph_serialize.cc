#include "io/graph_serialize.h"

#include <cstring>
#include <fstream>

#include "graph/graph_checks.h"
#include "io/graph_format.h"

namespace oca {

namespace {

// The format lives in io/graph_format.h, shared with the mmap backend
// (graph/mmap_graph) and the streaming builder (graph/graph_stream_build):
// one writer family, three readers, zero drift.
constexpr const char (&kMagic)[4] = kGraphFileMagic;
constexpr uint32_t kVersion = kGraphFileVersion;
constexpr uint32_t kVersionWeighted = kGraphFileVersionWeighted;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteGraphBinary(const Graph& graph, std::ostream& out) {
  // Unweighted graphs always write v1 so their bytes — and every digest
  // pinned on them — are unchanged from before weights existed.
  const bool weighted = graph.is_weighted();
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, weighted ? kVersionWeighted : kVersion);
  WritePod(out, static_cast<uint64_t>(graph.num_nodes()));
  WritePod(out, static_cast<uint64_t>(graph.neighbor_array().size()));
  const auto& offsets = graph.offsets();
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  const auto& nbrs = graph.neighbor_array();
  out.write(reinterpret_cast<const char*>(nbrs.data()),
            static_cast<std::streamsize>(nbrs.size() * sizeof(NodeId)));
  if (weighted) {
    const auto& weights = graph.weight_array();
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights.size() * sizeof(double)));
  }
  if (!out) return Status::IOError("binary graph write failed");
  return Status::OK();
}

Status WriteGraphBinaryFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteGraphBinary(graph, out);
}

Result<Graph> ReadGraphBinary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad magic: not an OCAG graph file");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) ||
      (version != kVersion && version != kVersionWeighted)) {
    return Status::IOError("unsupported OCAG version");
  }
  const bool weighted = version == kVersionWeighted;
  uint64_t n = 0, arr = 0;
  if (!ReadPod(in, &n) || !ReadPod(in, &arr)) {
    return Status::IOError("truncated OCAG header");
  }
  if (arr % 2 != 0) {
    return Status::IOError("neighbor array length must be even");
  }
  // Sanity-check the header against the remaining stream size before
  // allocating: a corrupted size field must not trigger a multi-terabyte
  // allocation (found by the corruption-injection tests).
  {
    std::streampos cur = in.tellg();
    if (cur >= 0) {
      in.seekg(0, std::ios::end);
      std::streampos end = in.tellg();
      in.seekg(cur);
      if (end >= 0) {
        uint64_t remaining = static_cast<uint64_t>(end - cur);
        uint64_t expected = (n + 1) * sizeof(uint64_t) + arr * sizeof(NodeId) +
                            (weighted ? arr * sizeof(double) : 0);
        if (n > (UINT64_MAX / sizeof(uint64_t)) - 1 || expected != remaining) {
          return Status::IOError(
              "OCAG header sizes inconsistent with stream length");
        }
      }
    }
  }
  std::vector<uint64_t> offsets(n + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(uint64_t)));
  std::vector<NodeId> neighbors(arr);
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  std::vector<double> weights(weighted ? arr : 0);
  if (weighted) {
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(double)));
  }
  if (!in) return Status::IOError("truncated OCAG body");

  Graph graph(std::move(offsets), std::move(neighbors), std::move(weights),
              {});
  OCA_RETURN_IF_ERROR(ValidateGraph(graph));
  return graph;
}

Result<Graph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadGraphBinary(in);
}

}  // namespace oca
