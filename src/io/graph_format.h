// The OCAG on-disk graph format, shared by the stream writer
// (io/graph_serialize), the streaming builder (graph/graph_stream_build),
// and the mmap backend (graph/mmap_graph).
//
// Little-endian, versioned header, then the two CSR arrays verbatim:
//
//   byte 0   magic "OCAG"
//   byte 4   u32 version (currently 1)
//   byte 8   u64 n    — number of nodes
//   byte 16  u64 arr  — neighbor array length (2m)
//   byte 24  u64 offsets[n + 1]
//   byte 24 + 8(n+1)  u32 neighbors[arr]
//
// The section offsets are what make the format directly mmap-able: the
// header is 24 bytes, so the u64 offsets table lands 8-byte aligned and
// the u32 neighbor array (24 + 8(n+1) ≡ 0 mod 4) 4-byte aligned at any
// page-aligned mapping base. A valid file's size is exactly
// GraphFileBytes(n, arr); anything shorter is truncated, anything longer
// is trailing garbage — both are typed errors on open.

#ifndef OCA_IO_GRAPH_FORMAT_H_
#define OCA_IO_GRAPH_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace oca {

inline constexpr char kGraphFileMagic[4] = {'O', 'C', 'A', 'G'};
inline constexpr uint32_t kGraphFileVersion = 1;

/// Fixed header size: magic + version + n + arr.
inline constexpr uint64_t kGraphFileHeaderBytes = 24;

/// Byte offset of the u64 offsets table (== header size).
inline constexpr uint64_t kGraphFileOffsetsStart = kGraphFileHeaderBytes;

/// Byte offset of the u32 neighbor array for an n-node file.
inline constexpr uint64_t GraphFileNeighborsStart(uint64_t n) {
  return kGraphFileOffsetsStart + (n + 1) * sizeof(uint64_t);
}

/// Exact size of a well-formed file with n nodes and arr (= 2m)
/// neighbor entries.
inline constexpr uint64_t GraphFileBytes(uint64_t n, uint64_t arr) {
  return GraphFileNeighborsStart(n) + arr * sizeof(uint32_t);
}

}  // namespace oca

#endif  // OCA_IO_GRAPH_FORMAT_H_
