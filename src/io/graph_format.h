// The OCAG on-disk graph format, shared by the stream writer
// (io/graph_serialize), the streaming builder (graph/graph_stream_build),
// and the mmap backend (graph/mmap_graph).
//
// Little-endian, versioned header, then the CSR arrays verbatim:
//
//   byte 0   magic "OCAG"
//   byte 4   u32 version (1 = unweighted, 2 = weighted)
//   byte 8   u64 n    — number of nodes
//   byte 16  u64 arr  — neighbor array length (2m)
//   byte 24  u64 offsets[n + 1]
//   byte 24 + 8(n+1)  u32 neighbors[arr]
//   (v2 only)         f64 weights[arr]
//
// The section offsets are what make the format directly mmap-able: the
// header is 24 bytes, so the u64 offsets table lands 8-byte aligned and
// the u32 neighbor array (24 + 8(n+1) ≡ 0 mod 4) 4-byte aligned at any
// page-aligned mapping base. In v2 the weight section starts at
// 24 + 8(n+1) + 4·arr; arr is always even (each undirected edge stored
// twice), so the f64 array is 8-byte aligned too. Version 1 files carry
// no weight section and are byte-for-byte what they always were — a v2
// reader opens them unchanged, and unweighted graphs are always WRITTEN
// as v1 so old readers and old digests keep working. A valid file's size
// is exactly GraphFileBytes(n, arr, weighted); anything shorter is
// truncated, anything longer is trailing garbage — both are typed errors
// on open.

#ifndef OCA_IO_GRAPH_FORMAT_H_
#define OCA_IO_GRAPH_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace oca {

inline constexpr char kGraphFileMagic[4] = {'O', 'C', 'A', 'G'};
inline constexpr uint32_t kGraphFileVersion = 1;
inline constexpr uint32_t kGraphFileVersionWeighted = 2;

/// Fixed header size: magic + version + n + arr.
inline constexpr uint64_t kGraphFileHeaderBytes = 24;

/// Byte offset of the u64 offsets table (== header size).
inline constexpr uint64_t kGraphFileOffsetsStart = kGraphFileHeaderBytes;

/// Byte offset of the u32 neighbor array for an n-node file.
inline constexpr uint64_t GraphFileNeighborsStart(uint64_t n) {
  return kGraphFileOffsetsStart + (n + 1) * sizeof(uint64_t);
}

/// Byte offset of the v2 f64 weight array (8-aligned because arr is
/// even).
inline constexpr uint64_t GraphFileWeightsStart(uint64_t n, uint64_t arr) {
  return GraphFileNeighborsStart(n) + arr * sizeof(uint32_t);
}

/// Exact size of a well-formed file with n nodes and arr (= 2m)
/// neighbor entries.
inline constexpr uint64_t GraphFileBytes(uint64_t n, uint64_t arr,
                                         bool weighted = false) {
  return GraphFileWeightsStart(n, arr) +
         (weighted ? arr * sizeof(double) : 0);
}

}  // namespace oca

#endif  // OCA_IO_GRAPH_FORMAT_H_
