#include "io/metis.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace oca {

namespace {

// Prints a weight with enough digits to round-trip through text exactly.
// %.17g is shortest-safe for IEEE double; trailing-zero trimming is not
// worth the complexity for a diagnostic-grade text format.
void AppendWeight(std::ostream& out, double w) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  out << buf;
}

}  // namespace

Result<Graph> ReadMetisStream(std::istream& in) {
  std::string line;
  size_t line_no = 0;

  // Header (first non-comment line).
  size_t n = 0, m = 0;
  uint32_t fmt = 0;
  size_t ncon = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream header(line);
    if (!(header >> n >> m)) {
      return Status::IOError("malformed METIS header at line " +
                             std::to_string(line_no));
    }
    if (header >> fmt) {
      // fmt is three decimal digits "abc": vertex sizes / vertex
      // weights / edge weights.
      if (fmt / 100 != 0) {
        return Status::Unimplemented(
            "METIS vertex sizes (fmt 1xx) are not supported");
      }
      if (fmt % 10 > 1 || (fmt / 10) % 10 > 1) {
        return Status::IOError("invalid METIS fmt code " +
                               std::to_string(fmt) + " at line " +
                               std::to_string(line_no));
      }
      if ((fmt / 10) % 10 == 1) {
        ncon = 1;  // vertex weights present; one constraint by default
        size_t ncon_field = 0;
        if (header >> ncon_field) {
          if (ncon_field == 0) {
            return Status::IOError("METIS ncon must be >= 1 at line " +
                                   std::to_string(line_no));
          }
          ncon = ncon_field;
        }
      }
    }
    have_header = true;
    break;
  }
  if (!have_header) {
    return Status::IOError("missing METIS header");
  }
  const bool edge_weights = fmt % 10 == 1;

  GraphBuilder builder(n);
  // METIS lists every edge twice (once per endpoint). Unweighted reads
  // lean on the builder's duplicate collapse; weighted reads must NOT
  // (duplicates SUM there), so each edge is added from its lower-id
  // listing only and the mirror listing is checked against it — which
  // upgrades the read to a real weight-symmetry validation.
  std::unordered_map<uint64_t, double> forward;
  auto pair_key = [](size_t u, uint64_t v) {
    return static_cast<uint64_t>(u) << 32 | v;
  };
  size_t node = 0;
  while (node < n && std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream ls(line);
    // Vertex weights (fmt 01x) lead each adjacency line; OCA has no
    // vertex-weight concept, so they are validated as numbers and
    // dropped.
    for (size_t k = 0; k < ncon; ++k) {
      double vw = 0.0;
      if (!(ls >> vw)) {
        if (ls.eof() && k == 0 && line.find_first_not_of(" \t\r") ==
                                      std::string::npos) {
          break;  // blank line: isolated vertex with elided weights
        }
        return Status::IOError("missing vertex weight at line " +
                               std::to_string(line_no));
      }
    }
    uint64_t nbr = 0;
    while (ls >> nbr) {
      if (nbr == 0 || nbr > n) {
        return Status::IOError("neighbor id " + std::to_string(nbr) +
                               " out of range at line " +
                               std::to_string(line_no));
      }
      if (edge_weights) {
        double w = 0.0;
        if (!(ls >> w)) {
          return Status::IOError("missing edge weight at line " +
                                 std::to_string(line_no));
        }
        if (!std::isfinite(w) || w <= 0.0) {
          return Status::IOError("edge weight must be finite and > 0 at line " +
                                 std::to_string(line_no));
        }
        const uint64_t other = nbr - 1;
        if (node < other) {
          forward.emplace(pair_key(node, other), w);
          builder.AddEdge(static_cast<NodeId>(node),
                          static_cast<NodeId>(other), w);
        } else if (node > other) {
          auto it = forward.find(pair_key(other, node));
          if (it == forward.end() || it->second != w) {
            return Status::IOError(
                "asymmetric weighted adjacency at line " +
                std::to_string(line_no) + ": edge (" + std::to_string(node) +
                ", " + std::to_string(other) + ") does not mirror its "
                "earlier listing");
          }
        }
        // node == other: self-listing, dropped (matches the unweighted
        // reader, where the builder discards self-loops).
      } else {
        builder.AddEdge(static_cast<NodeId>(node),
                        static_cast<NodeId>(nbr - 1));
      }
    }
    if (!ls.eof()) {
      return Status::IOError("malformed adjacency at line " +
                             std::to_string(line_no));
    }
    ++node;
  }
  if (node < n) {
    return Status::IOError("METIS file ends after " + std::to_string(node) +
                           " of " + std::to_string(n) + " adjacency lines");
  }

  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());
  if (graph.num_edges() != m) {
    return Status::IOError(
        "METIS header claims " + std::to_string(m) + " edges but " +
        std::to_string(graph.num_edges()) + " distinct edges were read");
  }
  return graph;
}

Result<Graph> ReadMetisFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadMetisStream(in);
}

Status WriteMetisStream(const Graph& graph, std::ostream& out) {
  out << "% generated by oca\n";
  if (graph.is_weighted()) {
    out << graph.num_nodes() << ' ' << graph.num_edges() << " 001\n";
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      auto nbrs = graph.Neighbors(v);
      auto wts = graph.Weights(v);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        if (i > 0) out << ' ';
        out << (nbrs[i] + 1) << ' ';  // 1-based
        AppendWeight(out, wts[i]);
      }
      out << '\n';
    }
    if (!out) return Status::IOError("stream write failed");
    return Status::OK();
  }
  out << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto nbrs = graph.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) out << ' ';
      out << (nbrs[i] + 1);  // 1-based
    }
    out << '\n';
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteMetisFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteMetisStream(graph, out);
}

}  // namespace oca
