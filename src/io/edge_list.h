// Text edge-list I/O in the SNAP dataset convention:
//   - '#' lines are comments
//   - one edge per line: "<u><whitespace><v>"
//   - node ids need not be dense; they are remapped to [0, n)
//
// This is the format of the public SNAP social-network datasets the paper
// community standardly evaluates on.

#ifndef OCA_IO_EDGE_LIST_H_
#define OCA_IO_EDGE_LIST_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace oca {

/// A loaded edge list plus the original-id mapping.
struct LoadedGraph {
  Graph graph;
  std::vector<uint64_t> original_ids;  // dense id -> original id

  /// Dense id for original id, or npos when unseen.
  static constexpr uint32_t kNotFound = UINT32_MAX;
};

/// Parses SNAP-style edge-list text from a stream.
Result<LoadedGraph> ReadEdgeListStream(std::istream& in);

/// Loads a SNAP-style edge-list file.
Result<LoadedGraph> ReadEdgeListFile(const std::string& path);

/// Writes the canonical (u < v) edge list, one edge per line, with a
/// header comment carrying n and m.
Status WriteEdgeListStream(const Graph& graph, std::ostream& out);
Status WriteEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace oca

#endif  // OCA_IO_EDGE_LIST_H_
