// Community-cover I/O: one community per line, whitespace-separated node
// ids ('#' comments allowed). Compatible with the SNAP ground-truth
// community files (com-*.top5000.cmty.txt etc.).

#ifndef OCA_IO_COVER_IO_H_
#define OCA_IO_COVER_IO_H_

#include <iosfwd>
#include <string>

#include "core/cover.h"
#include "util/result.h"

namespace oca {

Result<Cover> ReadCoverStream(std::istream& in);
Result<Cover> ReadCoverFile(const std::string& path);

Status WriteCoverStream(const Cover& cover, std::ostream& out);
Status WriteCoverFile(const Cover& cover, const std::string& path);

}  // namespace oca

#endif  // OCA_IO_COVER_IO_H_
