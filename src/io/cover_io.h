// Community-cover I/O: one community per line, whitespace-separated node
// ids ('#' comments allowed). Compatible with the SNAP ground-truth
// community files (com-*.top5000.cmty.txt etc.).

#ifndef OCA_IO_COVER_IO_H_
#define OCA_IO_COVER_IO_H_

#include <iosfwd>
#include <string>

#include "core/cover.h"
#include "util/result.h"

namespace oca {

Result<Cover> ReadCoverStream(std::istream& in);
Result<Cover> ReadCoverFile(const std::string& path);

/// Writers return the number of communities written; failures are typed
/// (kIOError), same Result<T> discipline as the store writers.
Result<size_t> WriteCoverStream(const Cover& cover, std::ostream& out);
Result<size_t> WriteCoverFile(const Cover& cover, const std::string& path);

}  // namespace oca

#endif  // OCA_IO_COVER_IO_H_
