// Binary edge files: the inter-stage format of the out-of-core
// pipeline (streaming generator stages, external edge lists headed for
// the chunked CSR builder).
//
// Format: a bare sequence of little-endian (u32 u, u32 v) records,
// 8 bytes per undirected edge, canonical orientation u < v, no header.
// A file's edge count is size/8; any size not divisible by 8 is a
// typed error. The format is deliberately trivial — it exists to be
// scanned repeatedly by EdgeSource passes and patched in place by the
// edge-swap randomizer, not to be archival (the OCAG graph file is).

#ifndef OCA_IO_EDGE_STREAM_H_
#define OCA_IO_EDGE_STREAM_H_

#include <cstdio>
#include <string>

#include "graph/graph_stream_build.h"
#include "util/result.h"

namespace oca {

/// Buffered sequential writer. Self-loops are rejected (typed error);
/// orientation is canonicalized to u < v on write.
class EdgeFileWriter {
 public:
  EdgeFileWriter() = default;
  ~EdgeFileWriter();
  EdgeFileWriter(const EdgeFileWriter&) = delete;
  EdgeFileWriter& operator=(const EdgeFileWriter&) = delete;

  /// Creates/truncates `path`.
  Status Open(const std::string& path);

  /// Appends one edge (canonicalized). Open must have succeeded.
  Status Append(NodeId u, NodeId v);

  /// Flushes and closes; returns the first deferred write error.
  Status Close();

  uint64_t edges_written() const { return edges_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t edges_written_ = 0;
};

/// Re-scannable EdgeSource over an edge file, for the chunked builder.
class EdgeFileSource final : public EdgeSource {
 public:
  EdgeFileSource() = default;
  ~EdgeFileSource() override;
  EdgeFileSource(const EdgeFileSource&) = delete;
  EdgeFileSource& operator=(const EdgeFileSource&) = delete;

  /// Opens `path` and validates its size is a whole number of records.
  Status Open(const std::string& path);

  uint64_t num_edges() const { return num_edges_; }

  Status Rewind() override;
  Result<size_t> ReadBatch(std::span<Edge> out) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t num_edges_ = 0;
};

/// Edge count of `path` (validates record alignment without opening a
/// stream).
Result<uint64_t> EdgeFileEdgeCount(const std::string& path);

}  // namespace oca

#endif  // OCA_IO_EDGE_STREAM_H_
