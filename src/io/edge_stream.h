// Binary edge files: the inter-stage format of the out-of-core
// pipeline (streaming generator stages, external edge lists headed for
// the chunked CSR builder).
//
// Format: a bare sequence of little-endian (u32 u, u32 v) records,
// 8 bytes per undirected edge, canonical orientation u < v, no header.
// A file's edge count is size/8; any size not divisible by 8 is a
// typed error. The format is deliberately trivial — it exists to be
// scanned repeatedly by EdgeSource passes and patched in place by the
// edge-swap randomizer, not to be archival (the OCAG graph file is).
//
// Weighted variant: (u32 u, u32 v, f64 w) records, 16 bytes each,
// written by WeightedEdgeFileWriter and consumed by
// WeightedEdgeFileSource (whose has_weights() routes the chunked
// builder to the weighted .ocag v2 path). The two record shapes live
// in different files — a weighted file is size/16 edges, and since 16
// and 8 share residues the reader classes are never interchangeable;
// pick by construction, not by sniffing.

#ifndef OCA_IO_EDGE_STREAM_H_
#define OCA_IO_EDGE_STREAM_H_

#include <cstdio>
#include <string>

#include "graph/graph_stream_build.h"
#include "util/result.h"

namespace oca {

/// Buffered sequential writer. Self-loops are rejected (typed error);
/// orientation is canonicalized to u < v on write.
class EdgeFileWriter {
 public:
  EdgeFileWriter() = default;
  ~EdgeFileWriter();
  EdgeFileWriter(const EdgeFileWriter&) = delete;
  EdgeFileWriter& operator=(const EdgeFileWriter&) = delete;

  /// Creates/truncates `path`.
  Status Open(const std::string& path);

  /// Appends one edge (canonicalized). Open must have succeeded.
  Status Append(NodeId u, NodeId v);

  /// Flushes and closes; returns the first deferred write error.
  Status Close();

  uint64_t edges_written() const { return edges_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t edges_written_ = 0;
};

/// Re-scannable EdgeSource over an edge file, for the chunked builder.
class EdgeFileSource final : public EdgeSource {
 public:
  EdgeFileSource() = default;
  ~EdgeFileSource() override;
  EdgeFileSource(const EdgeFileSource&) = delete;
  EdgeFileSource& operator=(const EdgeFileSource&) = delete;

  /// Opens `path` and validates its size is a whole number of records.
  Status Open(const std::string& path);

  uint64_t num_edges() const { return num_edges_; }

  Status Rewind() override;
  Result<size_t> ReadBatch(std::span<Edge> out) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t num_edges_ = 0;
};

/// Edge count of `path` (validates record alignment without opening a
/// stream).
Result<uint64_t> EdgeFileEdgeCount(const std::string& path);

/// Buffered sequential writer of 16-byte weighted records. Self-loops
/// and non-finite or non-positive weights are rejected (typed errors);
/// orientation is canonicalized to u < v on write.
class WeightedEdgeFileWriter {
 public:
  WeightedEdgeFileWriter() = default;
  ~WeightedEdgeFileWriter();
  WeightedEdgeFileWriter(const WeightedEdgeFileWriter&) = delete;
  WeightedEdgeFileWriter& operator=(const WeightedEdgeFileWriter&) = delete;

  /// Creates/truncates `path`.
  Status Open(const std::string& path);

  /// Appends one weighted edge (canonicalized). Open must have succeeded.
  Status Append(NodeId u, NodeId v, double w);

  /// Flushes and closes; returns the first deferred write error.
  Status Close();

  uint64_t edges_written() const { return edges_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t edges_written_ = 0;
};

/// Re-scannable weighted EdgeSource over a 16-byte-record file. Feeds
/// the chunked builder's weighted path (has_weights() is true).
class WeightedEdgeFileSource final : public EdgeSource {
 public:
  WeightedEdgeFileSource() = default;
  ~WeightedEdgeFileSource() override;
  WeightedEdgeFileSource(const WeightedEdgeFileSource&) = delete;
  WeightedEdgeFileSource& operator=(const WeightedEdgeFileSource&) = delete;

  /// Opens `path` and validates its size is a whole number of records.
  Status Open(const std::string& path);

  uint64_t num_edges() const { return num_edges_; }

  bool has_weights() const override { return true; }
  Status Rewind() override;
  Result<size_t> ReadBatch(std::span<Edge> out) override;
  Result<size_t> ReadBatchWeighted(std::span<Edge> out,
                                   std::span<double> weights) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t num_edges_ = 0;
};

/// Edge count of a weighted (16-byte-record) edge file.
Result<uint64_t> WeightedEdgeFileEdgeCount(const std::string& path);

}  // namespace oca

#endif  // OCA_IO_EDGE_STREAM_H_
