#include "io/cover_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace oca {

Result<Cover> ReadCoverStream(std::istream& in) {
  Cover cover;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Community community;
    uint64_t raw = 0;
    while (ls >> raw) {
      community.push_back(static_cast<NodeId>(raw));
    }
    if (!ls.eof()) {
      return Status::IOError("malformed community at line " +
                             std::to_string(line_no));
    }
    if (!community.empty()) cover.Add(std::move(community));
  }
  return cover;
}

Result<Cover> ReadCoverFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCoverStream(in);
}

Result<size_t> WriteCoverStream(const Cover& cover, std::ostream& out) {
  out << "# " << cover.size() << " communities\n";
  for (const auto& community : cover) {
    for (size_t i = 0; i < community.size(); ++i) {
      if (i > 0) out << ' ';
      out << community[i];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("stream write failed");
  return cover.size();
}

Result<size_t> WriteCoverFile(const Cover& cover, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCoverStream(cover, out);
}

}  // namespace oca
