#include "io/community_serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <vector>

#include "io/community_format.h"

namespace oca {

namespace {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Pads `out` with zero bytes from `at` up to the next 8-byte boundary.
void PadTo8(std::ostream& out, uint64_t at) {
  static constexpr char kZeros[8] = {0};
  out.write(kZeros, static_cast<std::streamsize>(CommunityFileAlign8(at) - at));
}

Result<uint32_t> StopReasonCode(const std::string& reason) {
  for (uint32_t code = 0; code < kCommunityStopReasonCount; ++code) {
    if (CommunityStopReasonName(code) == reason) return code;
  }
  return Status::InvalidArgument("stop reason '" + reason +
                                 "' has no OCAC on-disk code");
}

/// Tree-shape validation, strictly before any byte is written: the
/// store trusts the snapshot's internal links on its zero-copy query
/// path, so a malformed tree must be an error here, not a bad file.
Status ValidateTree(const RecursiveHierarchy& tree, uint64_t num_nodes) {
  const size_t c = tree.nodes.size();
  std::vector<char> is_root(c, 0);
  for (uint32_t r : tree.roots) {
    if (r >= c) {
      return Status::InvalidArgument("root arena id " + std::to_string(r) +
                                     " out of range (" + std::to_string(c) +
                                     " communities)");
    }
    is_root[r] = 1;
  }
  size_t child_links = 0;
  for (size_t i = 0; i < c; ++i) {
    const RecursiveCommunity& node = tree.nodes[i];
    if (node.community.empty()) {
      return Status::InvalidArgument("community " + std::to_string(i) +
                                     " is empty");
    }
    NodeId prev = 0;
    for (size_t j = 0; j < node.community.size(); ++j) {
      const NodeId v = node.community[j];
      if (v >= num_nodes) {
        return Status::InvalidArgument(
            "community " + std::to_string(i) + " member " + std::to_string(v) +
            " out of range (graph has " + std::to_string(num_nodes) +
            " nodes)");
      }
      if (j > 0 && v <= prev) {
        return Status::InvalidArgument("community " + std::to_string(i) +
                                       " members not sorted ascending");
      }
      prev = v;
    }
    const bool root = node.parent == RecursiveHierarchy::kNoParent;
    if (root != static_cast<bool>(is_root[i])) {
      return Status::InvalidArgument(
          "community " + std::to_string(i) +
          (root ? " has no parent but is not listed as a root"
                : " is listed as a root but has a parent"));
    }
    if (!root && (node.parent >= c || tree.nodes[node.parent].depth + 1 !=
                                          node.depth)) {
      return Status::InvalidArgument("community " + std::to_string(i) +
                                     " parent/depth link malformed");
    }
    if (root && node.depth != 0) {
      return Status::InvalidArgument("root community " + std::to_string(i) +
                                     " has nonzero depth");
    }
    for (uint32_t ch : node.children) {
      if (ch >= c || tree.nodes[ch].parent != i) {
        return Status::InvalidArgument("community " + std::to_string(i) +
                                       " child link malformed");
      }
    }
    child_links += node.children.size();
  }
  if (child_links + tree.roots.size() != c) {
    return Status::InvalidArgument(
        "tree is not a forest: " + std::to_string(c) + " communities, " +
        std::to_string(tree.roots.size()) + " roots, " +
        std::to_string(child_links) + " child links");
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> WriteCommunityStore(const RecursiveHierarchy& tree,
                                     uint64_t num_nodes, uint64_t num_edges,
                                     std::ostream& out) {
  if (num_nodes == 0) {
    return Status::InvalidArgument(
        "community store needs a graph with at least one node");
  }
  if (num_nodes > kCommunityFileNoParent) {
    return Status::InvalidArgument("community store node ids are u32; " +
                                   std::to_string(num_nodes) +
                                   " nodes do not fit");
  }
  OCA_RETURN_IF_ERROR(ValidateTree(tree, num_nodes));

  // Resolve every stop reason before the first byte goes out, so an
  // unknown reason is a clean error, not a truncated file.
  std::vector<uint32_t> reason_codes;
  reason_codes.reserve(tree.nodes.size());
  for (const RecursiveCommunity& node : tree.nodes) {
    OCA_ASSIGN_OR_RETURN(uint32_t code, StopReasonCode(node.stop_reason));
    reason_codes.push_back(code);
  }

  CommunityFileCounts counts;
  counts.num_nodes = num_nodes;
  counts.num_edges = num_edges;
  counts.communities = tree.nodes.size();
  counts.roots = tree.roots.size();
  for (const RecursiveCommunity& node : tree.nodes) {
    counts.levels = std::max<uint64_t>(counts.levels, node.depth + 1);
    counts.member_entries += node.community.size();
    counts.child_entries += node.children.size();
  }

  // Node -> root-community postings, ascending per node because roots
  // are scanned in ascending arena order.
  std::vector<uint32_t> sorted_roots(tree.roots.begin(), tree.roots.end());
  std::sort(sorted_roots.begin(), sorted_roots.end());
  std::vector<std::vector<uint32_t>> postings(num_nodes);
  for (uint32_t r : sorted_roots) {
    for (NodeId v : tree.nodes[r].community) postings[v].push_back(r);
    counts.posting_entries += tree.nodes[r].community.size();
  }

  // Membership paths straight from the tree's own query, so the stored
  // section is definitionally what MembershipPaths answers in memory.
  std::vector<std::vector<std::vector<uint32_t>>> paths(num_nodes);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    paths[v] = tree.MembershipPaths(static_cast<NodeId>(v));
    counts.paths += paths[v].size();
    for (const auto& path : paths[v]) counts.path_entries += path.size();
  }

  const std::vector<RecursiveLevelSummary> levels = tree.LevelSummaries();
  if (levels.size() != counts.levels) {
    return Status::Internal("level summary count " +
                            std::to_string(levels.size()) +
                            " disagrees with max depth " +
                            std::to_string(counts.levels));
  }

  // Header.
  out.write(kCommunityFileMagic, sizeof(kCommunityFileMagic));
  WritePod(out, kCommunityFileVersion);
  WritePod(out, counts.num_nodes);
  WritePod(out, counts.num_edges);
  WritePod(out, counts.communities);
  WritePod(out, counts.roots);
  WritePod(out, counts.levels);
  WritePod(out, counts.paths);
  WritePod(out, counts.member_entries);
  WritePod(out, counts.child_entries);
  WritePod(out, counts.posting_entries);
  WritePod(out, counts.path_entries);
  WritePod(out, tree.root_stats.coupling_constant);
  WritePod(out, tree.root_stats.lambda_min);
  WritePod(out, tree.Digest());

  // Records.
  uint64_t members_begin = 0, children_begin = 0;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const RecursiveCommunity& node = tree.nodes[i];
    const uint32_t reason = reason_codes[i];
    CommunityRecord rec;
    rec.members_begin = members_begin;
    rec.children_begin = children_begin;
    rec.member_count = static_cast<uint32_t>(node.community.size());
    rec.child_count = static_cast<uint32_t>(node.children.size());
    rec.parent = node.parent;
    rec.depth = node.depth;
    rec.stop_reason = reason;
    rec.reserved = 0;
    rec.subgraph_c = node.subgraph_c;
    rec.subgraph_lambda_min = node.subgraph_lambda_min;
    WritePod(out, rec);
    members_begin += rec.member_count;
    children_begin += rec.child_count;
  }

  // Roots (arena order, the canonical top-level cover order).
  for (uint32_t r : tree.roots) WritePod(out, r);
  PadTo8(out, CommunityFileRootsStart(counts) +
                  counts.roots * sizeof(uint32_t));

  // Members.
  for (const RecursiveCommunity& node : tree.nodes) {
    out.write(reinterpret_cast<const char*>(node.community.data()),
              static_cast<std::streamsize>(node.community.size() *
                                           sizeof(uint32_t)));
  }
  PadTo8(out, CommunityFileMembersStart(counts) +
                  counts.member_entries * sizeof(uint32_t));

  // Children.
  for (const RecursiveCommunity& node : tree.nodes) {
    out.write(reinterpret_cast<const char*>(node.children.data()),
              static_cast<std::streamsize>(node.children.size() *
                                           sizeof(uint32_t)));
  }
  PadTo8(out, CommunityFileChildrenStart(counts) +
                  counts.child_entries * sizeof(uint32_t));

  // Posting CSR.
  uint64_t offset = 0;
  for (uint64_t v = 0; v < num_nodes; ++v) {
    WritePod(out, offset);
    offset += postings[v].size();
  }
  WritePod(out, offset);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    out.write(reinterpret_cast<const char*>(postings[v].data()),
              static_cast<std::streamsize>(postings[v].size() *
                                           sizeof(uint32_t)));
  }
  PadTo8(out, CommunityFilePostingsStart(counts) +
                  counts.posting_entries * sizeof(uint32_t));

  // Path sections: node offsets, path offsets, entries.
  offset = 0;
  for (uint64_t v = 0; v < num_nodes; ++v) {
    WritePod(out, offset);
    offset += paths[v].size();
  }
  WritePod(out, offset);
  offset = 0;
  for (uint64_t v = 0; v < num_nodes; ++v) {
    for (const auto& path : paths[v]) {
      WritePod(out, offset);
      offset += path.size();
    }
  }
  WritePod(out, offset);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    for (const auto& path : paths[v]) {
      out.write(reinterpret_cast<const char*>(path.data()),
                static_cast<std::streamsize>(path.size() * sizeof(uint32_t)));
    }
  }
  PadTo8(out, CommunityFilePathEntriesStart(counts) +
                  counts.path_entries * sizeof(uint32_t));

  // Level rollups.
  for (const RecursiveLevelSummary& level : levels) {
    CommunityLevelRecord rec;
    rec.depth = level.depth;
    rec.communities = level.communities;
    rec.split = level.split;
    rec.subgraph_solves = level.subgraph_solves;
    rec.warm_started = level.warm_started;
    rec.spectral_iterations = level.spectral_iterations;
    WritePod(out, rec);
  }

  if (!out) return Status::IOError("community store write failed");
  return CommunityFileBytes(counts);
}

Result<uint64_t> WriteCommunityStoreFile(const RecursiveHierarchy& tree,
                                         uint64_t num_nodes,
                                         uint64_t num_edges,
                                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCommunityStore(tree, num_nodes, num_edges, out);
}

RecursiveHierarchy FlatHierarchyFromResult(const OcaResult& result) {
  RecursiveHierarchy tree;
  tree.nodes.reserve(result.cover.size());
  tree.roots.reserve(result.cover.size());
  for (size_t i = 0; i < result.cover.size(); ++i) {
    RecursiveCommunity node;
    node.community = result.cover[i];
    node.stop_reason = "flat";
    tree.nodes.push_back(std::move(node));
    tree.roots.push_back(static_cast<uint32_t>(i));
  }
  tree.root_stats = result.stats;
  return tree;
}

}  // namespace oca
