// Writers for the OCAC community-store format (io/community_format.h):
// persist one built RecursiveHierarchy — or a flat OcaResult cover via
// FlatHierarchyFromResult — as an immutable snapshot the mmap'd
// CommunityStore (core/community_store.h) answers queries from.
//
// Same family shape as io/graph_serialize: one stream writer, one file
// convenience wrapper, every failure a typed Status through Result<T> —
// kInvalidArgument when the tree itself is malformed (member ids out of
// range, unsorted communities, parent/child links inconsistent, a stop
// reason outside the on-disk enum), kIOError when the stream fails.
// Writers return the exact byte size of the snapshot written, which
// always equals CommunityFileBytes of the header counts.

#ifndef OCA_IO_COMMUNITY_SERIALIZE_H_
#define OCA_IO_COMMUNITY_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/recursive_hierarchy.h"
#include "util/result.h"

namespace oca {

/// Serializes `tree` for a source graph with `num_nodes` nodes and
/// `num_edges` edges (the store needs both for metadata and for sizing
/// the node→community posting index). Returns bytes written.
Result<uint64_t> WriteCommunityStore(const RecursiveHierarchy& tree,
                                     uint64_t num_nodes, uint64_t num_edges,
                                     std::ostream& out);

/// Same, to a file created (truncated) at `path`.
Result<uint64_t> WriteCommunityStoreFile(const RecursiveHierarchy& tree,
                                         uint64_t num_nodes,
                                         uint64_t num_edges,
                                         const std::string& path);

/// Wraps a flat OCA cover as a depth-0 hierarchy (every community a
/// root, stop reason "flat", no solve record) so one writer and one
/// store serve both pipeline shapes. Root stats are carried over, so
/// the snapshot's coupling constant and lambda_min are the run's.
RecursiveHierarchy FlatHierarchyFromResult(const OcaResult& result);

}  // namespace oca

#endif  // OCA_IO_COMMUNITY_SERIALIZE_H_
