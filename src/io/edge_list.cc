#include "io/edge_list.h"

#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace oca {

Result<LoadedGraph> ReadEdgeListStream(std::istream& in) {
  std::unordered_map<uint64_t, NodeId> dense;
  std::vector<uint64_t> original_ids;
  std::vector<Edge> edges;

  auto intern = [&](uint64_t raw) -> NodeId {
    auto [it, inserted] = dense.try_emplace(
        raw, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      return Status::IOError("malformed edge at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    // Sequence the interning: function-argument evaluation order is
    // unspecified, and first-seen id assignment must follow text order.
    NodeId ua = intern(a);
    NodeId ub = intern(b);
    edges.emplace_back(ua, ub);
  }

  GraphBuilder builder(original_ids.size());
  for (auto& [u, v] : edges) builder.AddEdge(u, v);
  OCA_ASSIGN_OR_RETURN(Graph graph, builder.Build());
  return LoadedGraph{std::move(graph), std::move(original_ids)};
}

Result<LoadedGraph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadEdgeListStream(in);
}

Status WriteEdgeListStream(const Graph& graph, std::ostream& out) {
  out << "# Undirected graph: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges\n";
  graph.ForEachEdge([&out](NodeId u, NodeId v) {
    out << u << '\t' << v << '\n';
  });
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteEdgeListStream(graph, out);
}

}  // namespace oca
