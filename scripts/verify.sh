#!/usr/bin/env bash
# Tier-1 verification entrypoint — the exact command from ROADMAP.md.
# CI and humans both run this; keep it in sync with the ROADMAP line.
#
# Usage:
#   scripts/verify.sh                 # Release build into ./build
#   BUILD_TYPE=Debug scripts/verify.sh
#   CMAKE_ARGS="-DOCA_SANITIZE=address" scripts/verify.sh
#   OCA_RUN_LARGE=1 scripts/verify.sh # also run label:large tests
#
# Tests labeled "large" (bigger integration runs, tests/large/) are
# excluded from the tier-1 lane to keep it fast; CI runs them in a
# dedicated step (`ctest -L large`), or set OCA_RUN_LARGE=1 here.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE="${BUILD_TYPE:-Release}"
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" ${CMAKE_ARGS:-} &&
  cmake --build "$BUILD_DIR" -j"$(nproc)" &&
  cd "$BUILD_DIR" &&
  ctest --output-on-failure -j"$(nproc)" -LE large &&
  if [ "${OCA_RUN_LARGE:-0}" = "1" ]; then
    ctest --output-on-failure -j"$(nproc)" -L large
  fi
