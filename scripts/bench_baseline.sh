#!/usr/bin/env bash
# Regenerates BENCH_baseline.json from bench_micro_kernels. Run after a
# perf-relevant change to refresh the trajectory later PRs are measured
# against; commit the result together with the change that moved it.
set -euo pipefail

cd "$(dirname "$0")/.."

# Dedicated build dir with sanitizers pinned off, so a cached
# OCA_SANITIZE from an earlier verify.sh run can't skew the timings.
BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DOCA_SANITIZE= >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro_kernels
"$BUILD_DIR"/bench/bench_micro_kernels \
  --benchmark_format=json \
  --benchmark_out=BENCH_baseline.json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true
echo "Wrote BENCH_baseline.json"
