#!/usr/bin/env bash
# Regenerates a BENCH_*.json snapshot from bench_micro_kernels. Run after
# a perf-relevant change and commit the result together with the change
# that moved it.
#
# Usage:
#   scripts/bench_baseline.sh              # overwrites BENCH_baseline.json
#   scripts/bench_baseline.sh BENCH_pr3.json   # per-PR snapshot, baseline kept
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"

# Dedicated build dir with sanitizers pinned off, so a cached
# OCA_SANITIZE from an earlier verify.sh run can't skew the timings.
BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DOCA_SANITIZE= >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro_kernels
"$BUILD_DIR"/bench/bench_micro_kernels \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true
echo "Wrote $OUT"
